"""Analog block-level realization of the NBL-SAT engine (paper Section V).

The paper argues that an NBL-SAT engine is "imminently realizable" from
commodity analog components: wideband amplifiers (noise generation), analog
adders, analog multipliers, low-pass filters and a correlator. This
subpackage models exactly that dataflow as a discrete-time block diagram:

* :mod:`repro.analog.blocks` — the component library (noise sources, adders,
  multipliers, gain stages, single-pole low-pass filters, correlators);
* :mod:`repro.analog.netlist` — named wires + blocks with cycle checking and
  topological evaluation;
* :mod:`repro.analog.engine` — streaming simulation of a netlist;
* :mod:`repro.analog.compiler` — compiles a CNF formula into the NBL-SAT
  block diagram and wraps it behind the same ``check(bindings)`` interface
  as the other engines (:class:`~repro.analog.compiler.AnalogNBLEngine`).
"""

from repro.analog.blocks import (
    Block,
    NoiseSourceBlock,
    AdderBlock,
    MultiplierBlock,
    GainBlock,
    LowPassFilterBlock,
    CorrelatorBlock,
    ConstantBlock,
)
from repro.analog.netlist import Netlist
from repro.analog.engine import AnalogSimulator
from repro.analog.compiler import AnalogNBLEngine, compile_nbl_sat_netlist

__all__ = [
    "Block",
    "NoiseSourceBlock",
    "AdderBlock",
    "MultiplierBlock",
    "GainBlock",
    "LowPassFilterBlock",
    "CorrelatorBlock",
    "ConstantBlock",
    "Netlist",
    "AnalogSimulator",
    "AnalogNBLEngine",
    "compile_nbl_sat_netlist",
]
