"""Netlist: wires + blocks, with structural validation and topological order."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analog.blocks import Block
from repro.exceptions import NetlistError


class Netlist:
    """A directed block diagram over named wires.

    Every wire is driven by exactly one block output; blocks may read any
    number of wires. The netlist must be acyclic (combinational feed-forward
    plus stateful-but-causal blocks), which :meth:`topological_order`
    verifies.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, Block] = {}
        self._drivers: Dict[str, str] = {}  # wire -> block name

    # -- construction -----------------------------------------------------------
    def add(self, block: Block) -> Block:
        """Add a block; its output wire must not already be driven."""
        if block.name in self._blocks:
            raise NetlistError(f"duplicate block name {block.name!r}")
        if block.output in self._drivers:
            raise NetlistError(
                f"wire {block.output!r} already driven by "
                f"{self._drivers[block.output]!r}"
            )
        self._blocks[block.name] = block
        self._drivers[block.output] = block.name
        return block

    def extend(self, blocks: Iterable[Block]) -> None:
        """Add several blocks."""
        for block in blocks:
            self.add(block)

    # -- queries ------------------------------------------------------------------
    @property
    def blocks(self) -> Dict[str, Block]:
        """Mapping of block name to block (insertion-ordered)."""
        return dict(self._blocks)

    @property
    def wires(self) -> List[str]:
        """All driven wire names."""
        return list(self._drivers)

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        try:
            return self._blocks[name]
        except KeyError as exc:
            raise NetlistError(f"no block named {name!r}") from exc

    def driver_of(self, wire: str) -> Block:
        """The block driving ``wire``."""
        try:
            return self._blocks[self._drivers[wire]]
        except KeyError as exc:
            raise NetlistError(f"wire {wire!r} has no driver") from exc

    def component_counts(self) -> Dict[str, int]:
        """How many blocks of each class the netlist contains.

        This is the "bill of materials" the hardware-cost analysis reports
        (number of adders, multipliers, noise sources, ...).
        """
        counts: Dict[str, int] = {}
        for block in self._blocks.values():
            key = type(block).__name__
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- validation / ordering -------------------------------------------------------
    def validate(self) -> None:
        """Check that every block input wire has a driver."""
        for block in self._blocks.values():
            for wire in block.inputs:
                if wire not in self._drivers:
                    raise NetlistError(
                        f"block {block.name!r} reads undriven wire {wire!r}"
                    )

    def topological_order(self) -> List[Block]:
        """Blocks in dependency order; raises :class:`NetlistError` on cycles."""
        self.validate()
        order: List[Block] = []
        state: Dict[str, int] = {}  # 0 unvisited, 1 in progress, 2 done

        def visit(name: str, stack: list[str]) -> None:
            status = state.get(name, 0)
            if status == 2:
                return
            if status == 1:
                cycle = " -> ".join(stack + [name])
                raise NetlistError(f"netlist contains a cycle: {cycle}")
            state[name] = 1
            block = self._blocks[name]
            for wire in block.inputs:
                visit(self._drivers[wire], stack + [name])
            state[name] = 2
            order.append(block)

        for name in self._blocks:
            visit(name, [])
        return order

    def reset(self) -> None:
        """Reset every stateful block (filters, correlators)."""
        for block in self._blocks.values():
            block.reset()

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return f"Netlist(blocks={len(self._blocks)}, wires={len(self._drivers)})"
