"""Construction of the NBL-SAT instance ``Σ_N`` (paper Section III-C).

``Σ_N`` replaces every clause ``c_j`` by the noise vector ``Z_j``: the
additive superposition of all minterms (over clause ``j``'s private basis
sources) that satisfy ``c_j``, with **each satisfying minterm appearing
exactly once** — this is how the paper expands its examples (Example 6 lists
the three distinct satisfying minterms of ``(x1 + x2)``).

Note that the naive reading "replace every literal ``v`` by ``T^j_v`` and add
them" would count a minterm once per literal it satisfies, inflating the mean
of ``S_N`` by the literal multiplicities. We therefore build ``Z_j`` by
inclusion-exclusion in its simplest form:

    Z_j = T^j  −  T^j_{all literals of c_j falsified}

i.e. the full superposition of clause ``j``'s hyperspace minus the cube in
which every literal of the clause is false. The subtraction needs one extra
cube product and one adder per clause in hardware, keeps every satisfying
minterm with coefficient one, and leaves unsatisfying minterms absent — so
the mean of ``τ_N · Σ_N`` is exactly ``K · E[x²]^{n·m}``.

Two evaluators are provided:

* :func:`sigma_samples` — the sampled signal on a carrier block, used by the
  Monte-Carlo engine;
* :func:`clause_minterm_sets` / :func:`satisfying_minterms` — the exact
  minterm-set view used by the symbolic engine.
"""

from __future__ import annotations

import numpy as np

from repro.cnf.formula import CNFFormula
from repro.exceptions import EngineError
from repro.hyperspace.minterm import MintermSet
from repro.hyperspace.superposition import (
    clause_cube_subspace,
    clause_full_superposition,
)


def falsifying_cube_bindings(clause) -> dict[int, bool] | None:
    """Bindings that falsify every literal of ``clause``.

    Returns ``None`` when the clause is a tautology (contains a literal and
    its negation): no assignment falsifies it, so the falsifying cube is
    empty and nothing has to be subtracted from the full superposition.
    """
    bindings: dict[int, bool] = {}
    for literal in clause:
        required = not literal.positive
        if bindings.get(literal.variable, required) != required:
            return None
        bindings[literal.variable] = required
    return bindings


def clause_superposition_samples(
    block: np.ndarray, clause_index: int, formula: CNFFormula
) -> np.ndarray:
    """Sampled ``Z_j``: superposition of the minterms satisfying clause ``c_j``.

    ``clause_index`` is 1-based, matching the paper's ``c_1 .. c_m``. Each
    satisfying minterm appears exactly once (see the module docstring).
    """
    clause = formula.clauses[clause_index - 1]
    if clause.is_empty:
        # An empty clause has no satisfying minterm: its superposition is the
        # zero signal, which correctly forces Σ_N (and hence S_N) to zero.
        return np.zeros(block.shape[-1], dtype=np.float64)
    full = clause_full_superposition(block, clause_index)
    bindings = falsifying_cube_bindings(clause)
    if bindings is None:
        return full
    return full - clause_cube_subspace(block, clause_index, bindings)


def sigma_samples(block: np.ndarray, formula: CNFFormula) -> np.ndarray:
    """Sampled ``Σ_N = Π_j Z_j`` for the whole formula on one carrier block."""
    arr = np.asarray(block)
    if arr.ndim != 4 or arr.shape[2] != 2:
        raise EngineError(f"sample block must have shape (m, n, 2, B), got {arr.shape}")
    if arr.shape[0] != formula.num_clauses:
        raise EngineError(
            f"block has {arr.shape[0]} clause rows but formula has "
            f"{formula.num_clauses} clauses"
        )
    if arr.shape[1] != formula.num_variables:
        raise EngineError(
            f"block has {arr.shape[1]} variable rows but formula has "
            f"{formula.num_variables} variables"
        )
    if formula.num_clauses == 0:
        # An empty conjunction is trivially satisfied by every minterm: Σ_N
        # degenerates to the constant 1 signal.
        return np.ones(arr.shape[-1], dtype=np.float64)
    result = clause_superposition_samples(arr, 1, formula)
    for clause_index in range(2, formula.num_clauses + 1):
        result = result * clause_superposition_samples(arr, clause_index, formula)
    return result


def clause_minterm_sets(formula: CNFFormula) -> list[MintermSet]:
    """Exact ``Z_j`` minterm sets, one per clause."""
    return [
        MintermSet.from_clause(formula.num_variables, clause) for clause in formula
    ]


def satisfying_minterms(formula: CNFFormula) -> MintermSet:
    """Exact set of minterms present in every ``Z_j`` — the models of ``S``.

    This is the minterm set whose members correlate with ``τ_N``; its size is
    the model count ``K`` that scales the mean of ``S_N``.
    """
    result = MintermSet.full(formula.num_variables)
    for clause_set in clause_minterm_sets(formula):
        result = result & clause_set
    return result
