"""SNR model of NBL-SAT (paper Section III-F) and sample planning.

The paper quantifies how well the checker can discriminate an instance with
one satisfying minterm from an unsatisfiable one. With uniform [-0.5, 0.5]
carriers:

* one satisfying minterm contributes ``μ̂₁ = (1/12)^{nm}`` to the mean;
* the fluctuation of the estimated mean is driven by the ``O(2^{nm})``
  independent cross products of ``τ_N · Σ_N``;
* the paper's resulting figure of merit is
  ``SNR = μ̂₁ / (3 σ̂₀) = sqrt(N-1) / (3 · 2^{nm})``.

The derivation in the paper multiplies the per-product standard deviation by
the *number* of cross products rather than its square root (independent
variances add, so the standard deviation grows with the square root). We
implement the paper's expression verbatim (:func:`snr_paper_model`) plus the
corrected version (:func:`snr_sqrt_model`); the empirical experiment
(``benchmarks/bench_snr_scaling.py``) reports both against measurement, and
EXPERIMENTS.md discusses the discrepancy.

All formulas are generalised from ``1/12`` to the carrier's actual power
``E[x²]`` so they apply to every carrier family in :mod:`repro.noise`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cnf.formula import CNFFormula
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SNRParameters:
    """Instance-size parameters entering the SNR model.

    Attributes
    ----------
    num_variables:
        Number of variables ``n``.
    num_clauses:
        Number of clauses ``m``.
    clause_size:
        Literals per clause ``k`` (the paper analyses 3-SAT, ``k = 3``).
    satisfying_minterms:
        Assumed number of satisfying minterms ``K`` (the SNR scales
        linearly with ``K``; the discrimination-limit case is ``K = 1``).
    """

    num_variables: int
    num_clauses: int
    clause_size: int = 3
    satisfying_minterms: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.num_variables, "num_variables")
        check_positive_int(self.num_clauses, "num_clauses")
        check_positive_int(self.clause_size, "clause_size")
        if self.satisfying_minterms < 0:
            raise ValueError("satisfying_minterms must be non-negative")

    @classmethod
    def from_formula(
        cls, formula: CNFFormula, satisfying_minterms: int = 1
    ) -> "SNRParameters":
        """Derive the parameters from a concrete formula."""
        sizes = [len(c) for c in formula] or [1]
        return cls(
            num_variables=formula.num_variables,
            num_clauses=formula.num_clauses,
            clause_size=max(sizes),
            satisfying_minterms=satisfying_minterms,
        )


def single_minterm_mean(params: SNRParameters, carrier: Carrier | None = None) -> float:
    """``μ̂₁``: mean of S_N contributed by one satisfying minterm."""
    carrier = carrier or UniformCarrier()
    return float(carrier.power ** (params.num_variables * params.num_clauses))


def log2_num_products(params: SNRParameters) -> float:
    """``log2`` of the total number of noise products in ``τ_N · Σ_N``.

    The paper counts ``2^n`` products in ``τ_N`` and
    ``(2^n - 2^{n-k})^m`` products in ``Σ_N`` (each clause's superposition
    excludes the ``2^{n-k}`` minterms that falsify it), i.e. ``O(2^{nm})``
    overall. Working in log2 keeps the numbers representable for large
    ``n·m``.
    """
    n, m, k = params.num_variables, params.num_clauses, params.clause_size
    per_clause = (2.0**n) - (2.0 ** (n - k) if n >= k else 0.0)
    if per_clause <= 0:
        per_clause = 1.0
    return n + m * math.log2(per_clause)


def noise_sigma_paper(
    params: SNRParameters, num_samples: int, carrier: Carrier | None = None
) -> float:
    """``σ̂₀`` exactly as the paper writes it: ``(1/sqrt(N-1)) · p^{nm} · #products``.

    ``p`` is the carrier power (1/12 in the paper). Returned as a float; may
    overflow to ``inf`` for very large ``n·m`` — callers that only need the
    SNR should use :func:`snr_paper_model`, which works in logs.
    """
    check_positive_int(num_samples, "num_samples")
    if num_samples < 2:
        return math.inf
    carrier = carrier or UniformCarrier()
    nm = params.num_variables * params.num_clauses
    try:
        return (
            carrier.power**nm * 2.0 ** log2_num_products(params)
        ) / math.sqrt(num_samples - 1)
    except OverflowError:
        return math.inf


def snr_paper_model(
    params: SNRParameters, num_samples: int, carrier: Carrier | None = None
) -> float:
    """The paper's SNR expression ``K · sqrt(N-1) / (3 · 2^{nm})``.

    Computed in log space; the carrier power cancels exactly as it does in
    the paper's derivation, so the result is carrier-independent.
    """
    check_positive_int(num_samples, "num_samples")
    if num_samples < 2:
        return 0.0
    if params.satisfying_minterms == 0:
        return 0.0
    log2_snr = (
        math.log2(params.satisfying_minterms)
        + 0.5 * math.log2(num_samples - 1)
        - math.log2(3.0)
        - log2_num_products(params)
    )
    try:
        return 2.0**log2_snr
    except OverflowError:
        return math.inf


def snr_sqrt_model(
    params: SNRParameters, num_samples: int, carrier: Carrier | None = None
) -> float:
    """Corrected SNR model: cross-product *variances* add, so σ grows as sqrt(#products).

    ``SNR = K · sqrt(N-1) / (3 · sqrt(#products))`` — this is the model the
    empirical measurements track (see EXPERIMENTS.md).
    """
    check_positive_int(num_samples, "num_samples")
    if num_samples < 2:
        return 0.0
    if params.satisfying_minterms == 0:
        return 0.0
    log2_snr = (
        math.log2(params.satisfying_minterms)
        + 0.5 * math.log2(num_samples - 1)
        - math.log2(3.0)
        - 0.5 * log2_num_products(params)
    )
    try:
        return 2.0**log2_snr
    except OverflowError:
        return math.inf


def samples_for_target_snr(
    params: SNRParameters, target_snr: float = 1.0, model: str = "paper"
) -> int:
    """Minimum number of noise samples to reach ``target_snr`` under a model.

    ``model`` is ``"paper"`` or ``"sqrt"``. The result can be astronomically
    large for non-trivial ``n·m`` — that *is* the paper's scalability story —
    so the return value is clamped to ``10**18`` to stay an int of sane size.
    """
    if target_snr <= 0:
        raise ValueError(f"target_snr must be positive, got {target_snr}")
    if model not in ("paper", "sqrt"):
        raise ValueError(f"model must be 'paper' or 'sqrt', got {model!r}")
    k = max(params.satisfying_minterms, 1)
    factor = log2_num_products(params) * (1.0 if model == "paper" else 0.5)
    # target = K * sqrt(N-1) / (3 * 2^factor)  =>  N = 1 + (3*target*2^factor/K)^2
    log2_required = math.log2(3.0 * target_snr / k) + factor
    if 2 * log2_required > 60:  # > ~1e18 samples
        return 10**18
    return int(math.ceil(1.0 + (2.0**log2_required) ** 2))


def empirical_snr(means_sat: list[float], means_unsat: list[float]) -> float:
    """Measured SNR from repeated check means: ``(μ₁ - 3σ₁) / (μ₀ + 3σ₀)``.

    Mirrors the paper's definition; ``means_sat`` are repeated estimates of
    the S_N mean on an instance with K satisfying minterms, ``means_unsat``
    on an unsatisfiable instance. Returns ``inf`` when the denominator is
    non-positive (perfect discrimination within measurement resolution).
    """
    if len(means_sat) < 2 or len(means_unsat) < 2:
        raise ValueError("empirical_snr requires at least two repetitions per class")
    mu1 = sum(means_sat) / len(means_sat)
    mu0 = sum(means_unsat) / len(means_unsat)
    var1 = sum((x - mu1) ** 2 for x in means_sat) / (len(means_sat) - 1)
    var0 = sum((x - mu0) ** 2 for x in means_unsat) / (len(means_unsat) - 1)
    numerator = mu1 - 3.0 * math.sqrt(var1)
    denominator = mu0 + 3.0 * math.sqrt(var0)
    if denominator <= 0:
        return math.inf
    return numerator / denominator
