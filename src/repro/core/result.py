"""Result objects returned by the NBL-SAT engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cnf.assignment import Assignment


@dataclass
class CheckResult:
    """Outcome of one NBL-SAT satisfiability check (Algorithm 1).

    Attributes
    ----------
    satisfiable:
        The decision: ``True`` when the mean of ``S_N = τ_N · Σ_N`` is judged
        positive, ``False`` when it is judged zero.
    mean:
        The (estimated or exact) mean of ``S_N``.
    threshold:
        The decision threshold the mean was compared against.
    samples_used:
        Number of noise samples consumed (0 for the exact/symbolic engine).
    std_error:
        Standard error of the estimated mean (0.0 for the exact engine).
    converged:
        Whether the adaptive stopping criterion was met before the sample
        budget ran out (always ``True`` for fixed-budget and exact checks).
    expected_minterm_signal:
        The analytic one-satisfying-minterm signal level
        ``carrier.power ** (n·m)``; useful to express ``mean`` in units of
        satisfying minterms.
    trace_samples / trace_means:
        Running-mean trace (one entry per processed block) when trace
        recording is enabled; empty otherwise.
    engine:
        Name of the engine that produced the result (``"sampled"``,
        ``"symbolic"``, ``"analog"``, ``"sbl"``, ``"rtw"``).
    bindings:
        The variable bindings applied to ``τ_N`` for this check (Algorithm 2
        uses these reduced checks).
    """

    satisfiable: bool
    mean: float
    threshold: float
    samples_used: int = 0
    std_error: float = 0.0
    converged: bool = True
    expected_minterm_signal: float = 1.0
    trace_samples: list[int] = field(default_factory=list)
    trace_means: list[float] = field(default_factory=list)
    engine: str = "sampled"
    bindings: dict[int, bool] = field(default_factory=dict)

    @property
    def estimated_model_count(self) -> float:
        """``mean / expected_minterm_signal`` — a (noisy) satisfying-minterm count."""
        if self.expected_minterm_signal == 0.0:
            return 0.0
        return self.mean / self.expected_minterm_signal

    def __str__(self) -> str:
        verdict = "SATISFIABLE" if self.satisfiable else "UNSATISFIABLE"
        return (
            f"{verdict} (mean={self.mean:.4g}, threshold={self.threshold:.4g}, "
            f"samples={self.samples_used}, engine={self.engine})"
        )


@dataclass
class AssignmentResult:
    """Outcome of the satisfying-assignment determination (Algorithm 2).

    Attributes
    ----------
    satisfiable:
        ``False`` when the initial check already declared the instance UNSAT
        (in which case ``assignment`` is ``None``).
    assignment:
        The satisfying assignment found (complete over all variables for the
        minterm variant; possibly partial for the cube variant).
    checks:
        The individual :class:`CheckResult` objects of every reduced check
        performed, in execution order.
    verified:
        ``True`` when the returned assignment was verified against the CNF
        formula (always done when an assignment is returned).
    total_samples:
        Total noise samples consumed across all checks.
    dont_care_variables:
        Variables dropped by the cube variant (both polarities satisfiable).
    """

    satisfiable: bool
    assignment: Optional[Assignment]
    checks: list[CheckResult] = field(default_factory=list)
    verified: bool = False
    total_samples: int = 0
    dont_care_variables: list[int] = field(default_factory=list)

    @property
    def num_checks(self) -> int:
        """Number of NBL-SAT check operations performed."""
        return len(self.checks)

    def __str__(self) -> str:
        if not self.satisfiable:
            return f"UNSATISFIABLE after {self.num_checks} checks"
        return (
            f"SATISFIABLE: {self.assignment} "
            f"({self.num_checks} checks, verified={self.verified})"
        )
