"""The exact (symbolic) NBL-SAT engine — the infinite-observation limit.

The paper stresses that NBL is a *deterministic* logic scheme: with an ideal
correlator (infinite observation time) the mean of ``S_N = τ_N · Σ_N`` is
exactly ``K · E[x²]^{n·m}`` where ``K`` is the number of satisfying minterms
inside the (possibly bound) reference hyperspace. This engine computes that
limit exactly using the minterm-set algebra of :mod:`repro.hyperspace`, so
Algorithms 1 and 2 can be exercised without any sampling noise. It doubles
as the ground-truth oracle for the Monte-Carlo engine's tests.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cnf.formula import CNFFormula
from repro.core.result import CheckResult
from repro.core.sigma import satisfying_minterms
from repro.exceptions import EngineError
from repro.hyperspace.minterm import MintermSet
from repro.hyperspace.reference import reference_minterms
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier


class SymbolicNBLEngine:
    """Exact evaluation of NBL-SAT checks via minterm-set algebra.

    Parameters
    ----------
    formula:
        The CNF instance ``S``.
    carrier:
        Carrier family used only to scale the reported mean to physical
        units (``E[x²]^{n·m}`` per satisfying minterm); the decision itself
        is carrier-independent.
    """

    name = "symbolic"

    def __init__(
        self, formula: CNFFormula, carrier: Optional[Carrier] = None
    ) -> None:
        if formula.num_variables == 0:
            raise EngineError("NBL-SAT requires at least one variable")
        self._formula = formula
        self._carrier = carrier if carrier is not None else UniformCarrier()
        # The satisfying minterm set is binding-independent, compute it once.
        self._models: MintermSet = satisfying_minterms(formula)

    # -- metadata -------------------------------------------------------------
    @property
    def formula(self) -> CNFFormula:
        """The CNF instance this engine is bound to."""
        return self._formula

    @property
    def carrier(self) -> Carrier:
        """Carrier family used for unit scaling."""
        return self._carrier

    @property
    def minterm_signal(self) -> float:
        """Exact contribution of one satisfying minterm to the mean of S_N."""
        exponent = self._formula.num_variables * max(self._formula.num_clauses, 1)
        return float(self._carrier.power**exponent)

    @property
    def satisfying_set(self) -> MintermSet:
        """The exact set of satisfying minterms of the formula."""
        return self._models

    # -- operations --------------------------------------------------------------
    def model_count(self, bindings: Optional[Mapping[int, bool]] = None) -> int:
        """Number of satisfying minterms inside the (bound) reference hyperspace."""
        bindings = dict(bindings or {})
        self._validate_bindings(bindings)
        reference = reference_minterms(self._formula.num_variables, bindings)
        return self._models.correlation_count(reference)

    def expected_mean(self, bindings: Optional[Mapping[int, bool]] = None) -> float:
        """Exact mean of ``S_N`` for the given τ_N bindings."""
        return self.model_count(bindings) * self.minterm_signal

    def check(self, bindings: Optional[Mapping[int, bool]] = None) -> CheckResult:
        """Algorithm 1 in the exact limit: SAT iff any satisfying minterm remains."""
        bindings = dict(bindings or {})
        count = self.model_count(bindings)
        signal = self.minterm_signal
        return CheckResult(
            satisfiable=count > 0,
            mean=count * signal,
            threshold=0.5 * signal,
            samples_used=0,
            std_error=0.0,
            converged=True,
            expected_minterm_signal=signal,
            engine=self.name,
            bindings=bindings,
        )

    # -- helpers -------------------------------------------------------------------
    def _validate_bindings(self, bindings: Mapping[int, bool]) -> None:
        for variable in bindings:
            if not 1 <= variable <= self._formula.num_variables:
                raise EngineError(
                    f"bound variable x{variable} out of range "
                    f"1..{self._formula.num_variables}"
                )

    def __repr__(self) -> str:
        return (
            f"SymbolicNBLEngine(n={self._formula.num_variables}, "
            f"m={self._formula.num_clauses}, models={self._models.count()})"
        )
