"""Algorithm 2 — satisfying-assignment determination via iterated NBL checks.

The paper recovers a satisfying assignment with at most ``n`` additional
check operations: in iteration ``i`` the reference hyperspace ``τ_N`` is
restricted to the subspace ``x_i = 1``; if the reduced ``S_N`` still has a
positive mean the solution lies in that subspace and ``x_i`` is kept at 1,
otherwise it must lie in the complementary subspace and ``x_i`` is bound
to 0. The cube variant (mentioned at the end of Section III-E) additionally
tests both polarities and omits variables for which both subspaces remain
satisfiable (don't-cares).

The implementation works with *any* engine exposing
``check(bindings) -> CheckResult`` — the sampled engine, the symbolic
engine, or the analog/SBL/RTW engines.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.checker import make_engine
from repro.core.result import AssignmentResult, CheckResult


class SupportsCheck(Protocol):
    """Structural type of every NBL-SAT engine usable by Algorithm 2."""

    formula: CNFFormula

    def check(self, bindings=None) -> CheckResult:  # pragma: no cover - protocol
        ...


def _engine_formula(engine) -> CNFFormula:
    formula = getattr(engine, "formula", None)
    if formula is None:
        raise TypeError("engine must expose a .formula attribute")
    return formula


def find_satisfying_assignment(
    engine: SupportsCheck,
    initial_check: Optional[CheckResult] = None,
    verify: bool = True,
) -> AssignmentResult:
    """Paper Algorithm 2: determine a satisfying minterm with ≤ n+1 checks.

    Parameters
    ----------
    engine:
        Any NBL-SAT engine bound to the target formula.
    initial_check:
        Result of a previously run Algorithm 1 check; if omitted, one is run
        first (the paper assumes Algorithm 1 has already declared the
        instance satisfiable).
    verify:
        When ``True`` (default), the returned assignment is evaluated
        against the CNF formula and the result recorded in
        :attr:`AssignmentResult.verified`.

    Returns
    -------
    AssignmentResult
        The assignment (complete over all variables) and the per-iteration
        check results.
    """
    formula = _engine_formula(engine)
    checks: list[CheckResult] = []

    if initial_check is None:
        initial_check = engine.check()
        checks.append(initial_check)
    if not initial_check.satisfiable:
        return AssignmentResult(
            satisfiable=False,
            assignment=None,
            checks=checks,
            verified=False,
            total_samples=sum(c.samples_used for c in checks),
        )

    bindings: dict[int, bool] = {}
    for variable in range(1, formula.num_variables + 1):
        trial = dict(bindings)
        trial[variable] = True
        result = engine.check(trial)
        checks.append(result)
        if result.satisfiable:
            # The solution lies in the x_i = 1 subspace (paper line 7 keeps
            # the positive literal).
            bindings[variable] = True
        else:
            # Algorithm 1 already established satisfiability, so the solution
            # must lie in the complementary x_i = 0 subspace.
            bindings[variable] = False

    assignment = Assignment(bindings)
    verified = formula.evaluate(assignment.as_dict()) if verify else False
    return AssignmentResult(
        satisfiable=True,
        assignment=assignment,
        checks=checks,
        verified=verified,
        total_samples=sum(c.samples_used for c in checks),
    )


def find_satisfying_cube(
    engine: SupportsCheck,
    initial_check: Optional[CheckResult] = None,
    verify: bool = True,
) -> AssignmentResult:
    """The cube variant of Algorithm 2, exactly as the paper describes it.

    Each variable is bound to both polarities (on top of the bindings kept so
    far); if *both* reduced instances remain satisfiable the variable is
    omitted from the result (a don't-care), otherwise the satisfiable
    polarity is kept. The returned assignment is a (possibly partial) cube.

    Note that the paper's rule produces a cube that is guaranteed to
    *contain* a satisfying assignment, but not necessarily a cube all of
    whose completions satisfy the formula (an implicant): dropping a
    variable because both subspaces contain *some* model does not make the
    variable irrelevant. ``verified`` therefore records the former property
    (the cube contains a model). Use :func:`find_prime_implicant_cube` for
    the stronger, implicant-producing variant built on the same NBL
    primitive (the S_N mean is proportional to the model count).
    """
    formula = _engine_formula(engine)
    checks: list[CheckResult] = []

    if initial_check is None:
        initial_check = engine.check()
        checks.append(initial_check)
    if not initial_check.satisfiable:
        return AssignmentResult(
            satisfiable=False,
            assignment=None,
            checks=checks,
            verified=False,
            total_samples=sum(c.samples_used for c in checks),
        )

    bindings: dict[int, bool] = {}
    dont_cares: list[int] = []
    for variable in range(1, formula.num_variables + 1):
        positive_trial = dict(bindings)
        positive_trial[variable] = True
        positive_result = engine.check(positive_trial)
        checks.append(positive_result)

        negative_trial = dict(bindings)
        negative_trial[variable] = False
        negative_result = engine.check(negative_trial)
        checks.append(negative_result)

        if positive_result.satisfiable and negative_result.satisfiable:
            dont_cares.append(variable)
        elif positive_result.satisfiable:
            bindings[variable] = True
        else:
            bindings[variable] = False

    assignment = Assignment(bindings)
    verified = False
    if verify:
        verified = _verify_cube(formula, bindings, dont_cares)
    return AssignmentResult(
        satisfiable=True,
        assignment=assignment,
        checks=checks,
        verified=verified,
        total_samples=sum(c.samples_used for c in checks),
        dont_care_variables=dont_cares,
    )


def _verify_cube(
    formula: CNFFormula, bindings: dict[int, bool], dont_cares: list[int]
) -> bool:
    """Check that the cube defined by ``bindings`` contains a satisfying assignment."""
    residual = formula
    for variable, value in bindings.items():
        residual = residual.condition(variable, value)
    if residual.has_empty_clause():
        return False
    if residual.num_clauses == 0:
        return True
    # Any model of the residual formula completes the cube into a model of
    # the original formula; exhaustive counting is fine at NBL-scale sizes.
    from repro.cnf.evaluate import count_models

    return count_models(residual) > 0


def _is_implicant(formula: CNFFormula, bindings: dict[int, bool]) -> bool:
    """Check that *every* completion of the cube satisfies the formula."""
    residual = formula
    for variable, value in bindings.items():
        residual = residual.condition(variable, value)
    if residual.has_empty_clause():
        return False
    return all(clause.is_tautology() for clause in residual)


def find_prime_implicant_cube(
    engine: SupportsCheck,
    initial_check: Optional[CheckResult] = None,
    verify: bool = True,
    count_tolerance: float = 0.5,
) -> AssignmentResult:
    """Extension of Algorithm 2: shrink a satisfying minterm into an implicant cube.

    The paper observes that the mean of the reduced ``S_N`` is proportional
    to the number of satisfying minterms in the bound subspace. A cube is an
    implicant exactly when *every* minterm in it is satisfying, i.e. when
    the estimated model count of the cube equals the cube's size
    ``2^{#free variables}``. This routine first runs the minterm variant of
    Algorithm 2, then greedily frees one variable at a time, keeping a
    variable free only when the count test (within ``count_tolerance``)
    confirms the enlarged cube is still an implicant.

    Intended for the symbolic/ideal engine, where the count estimate is
    exact; with the sampled engine the count estimate is noisy and the
    tolerance governs how aggressively variables are dropped.
    """
    formula = _engine_formula(engine)
    base = find_satisfying_assignment(engine, initial_check=initial_check, verify=verify)
    if not base.satisfiable or base.assignment is None:
        return base

    checks = list(base.checks)
    bindings = base.assignment.as_dict()
    dont_cares: list[int] = []
    for variable in range(1, formula.num_variables + 1):
        trial = {v: val for v, val in bindings.items() if v != variable}
        result = engine.check(trial)
        checks.append(result)
        free_count = formula.num_variables - len(trial)
        cube_size = float(2**free_count)
        if result.satisfiable and result.estimated_model_count >= cube_size - count_tolerance:
            bindings = trial
            dont_cares.append(variable)

    assignment = Assignment(bindings)
    verified = _is_implicant(formula, bindings) if verify else False
    return AssignmentResult(
        satisfiable=True,
        assignment=assignment,
        checks=checks,
        verified=verified,
        total_samples=sum(c.samples_used for c in checks),
        dont_care_variables=dont_cares,
    )


def nbl_sat_solve(
    formula: CNFFormula,
    engine: str = "sampled",
    config: Optional[NBLConfig] = None,
    cube: bool = False,
) -> AssignmentResult:
    """Convenience wrapper: run Algorithm 1 then Algorithm 2 on ``formula``.

    Parameters
    ----------
    formula:
        The CNF instance.
    engine:
        ``"sampled"`` or ``"symbolic"``.
    config:
        Engine configuration.
    cube:
        When ``True``, run the cube variant instead of the minterm variant.
    """
    concrete = make_engine(formula, engine, config)
    finder = find_satisfying_cube if cube else find_satisfying_assignment
    return finder(concrete)
