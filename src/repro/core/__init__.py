"""The paper's primary contribution: the NBL-SAT engines and algorithms.

Public surface:

* :class:`NBLSATSolver` — facade combining Algorithm 1 (single-operation
  SAT check) and Algorithm 2 (satisfying-assignment determination);
* :func:`nbl_sat_check` / :func:`nbl_sat_solve` — functional entry points;
* :class:`SampledNBLEngine` — the Monte-Carlo realization the paper
  simulated in MATLAB;
* :class:`SymbolicNBLEngine` — the exact, infinite-observation limit;
* :class:`NBLConfig` — engine configuration (carriers, sample budgets,
  thresholds);
* the SNR model of Section III-F (:mod:`repro.core.snr`).
"""

from repro.core.config import NBLConfig, paper_figure1_config
from repro.core.result import AssignmentResult, CheckResult
from repro.core.sampled import SampledNBLEngine
from repro.core.symbolic import SymbolicNBLEngine
from repro.core.checker import ENGINE_NAMES, make_engine, nbl_sat_check
from repro.core.assignment import (
    find_satisfying_assignment,
    find_satisfying_cube,
    find_prime_implicant_cube,
    nbl_sat_solve,
)
from repro.core.solver import NBLSATSolver
from repro.core.sigma import (
    sigma_samples,
    clause_superposition_samples,
    clause_minterm_sets,
    satisfying_minterms,
)
from repro.core.snr import (
    SNRParameters,
    single_minterm_mean,
    snr_paper_model,
    snr_sqrt_model,
    samples_for_target_snr,
    empirical_snr,
)

__all__ = [
    "NBLConfig",
    "paper_figure1_config",
    "AssignmentResult",
    "CheckResult",
    "SampledNBLEngine",
    "SymbolicNBLEngine",
    "ENGINE_NAMES",
    "make_engine",
    "nbl_sat_check",
    "find_satisfying_assignment",
    "find_satisfying_cube",
    "find_prime_implicant_cube",
    "nbl_sat_solve",
    "NBLSATSolver",
    "sigma_samples",
    "clause_superposition_samples",
    "clause_minterm_sets",
    "satisfying_minterms",
    "SNRParameters",
    "single_minterm_mean",
    "snr_paper_model",
    "snr_sqrt_model",
    "samples_for_target_snr",
    "empirical_snr",
]
