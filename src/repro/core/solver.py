"""High-level facade: the :class:`NBLSATSolver`.

This is the main user-facing entry point of the library — it wraps engine
construction, Algorithm 1 and Algorithm 2 behind a two-method API:

.. code-block:: python

    from repro import NBLSATSolver
    from repro.cnf import CNFFormula

    formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
    solver = NBLSATSolver(engine="symbolic")
    print(solver.check(formula).satisfiable)       # Algorithm 1
    print(solver.solve(formula).assignment)        # Algorithm 1 + 2
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cnf.formula import CNFFormula
from repro.core.assignment import (
    find_satisfying_assignment,
    find_satisfying_cube,
)
from repro.core.checker import ENGINE_NAMES, make_engine
from repro.core.config import NBLConfig
from repro.core.result import AssignmentResult, CheckResult
from repro.exceptions import EngineError


class NBLSATSolver:
    """Facade combining the NBL-SAT check and assignment-determination algorithms.

    Parameters
    ----------
    engine:
        ``"sampled"`` (Monte-Carlo, the paper's simulated realization) or
        ``"symbolic"`` (exact infinite-observation limit).
    config:
        Shared engine configuration (carrier family, sample budget,
        thresholds, seed).

    Notes
    -----
    The solver is stateless across calls: each :meth:`check`/:meth:`solve`
    builds a fresh engine for the given formula, so one solver instance can
    be reused across many instances.
    """

    def __init__(
        self, engine: str = "sampled", config: Optional[NBLConfig] = None
    ) -> None:
        if engine not in ENGINE_NAMES:
            raise EngineError(
                f"unknown engine {engine!r}; available: {ENGINE_NAMES}"
            )
        self._engine_name = engine
        self._config = config

    @property
    def engine_name(self) -> str:
        """Which engine family this solver uses."""
        return self._engine_name

    @property
    def config(self) -> Optional[NBLConfig]:
        """The engine configuration (``None`` means engine defaults)."""
        return self._config

    def check(
        self,
        formula: CNFFormula,
        bindings: Optional[Mapping[int, bool]] = None,
    ) -> CheckResult:
        """Algorithm 1: decide SAT/UNSAT in a single NBL operation."""
        engine = make_engine(formula, self._engine_name, self._config)
        return engine.check(bindings)

    def solve(self, formula: CNFFormula, cube: bool = False) -> AssignmentResult:
        """Algorithm 1 + Algorithm 2: decide and, if SAT, return an assignment.

        Parameters
        ----------
        formula:
            The CNF instance.
        cube:
            When ``True``, use the cube variant (don't-care extraction).
        """
        engine = make_engine(formula, self._engine_name, self._config)
        finder = find_satisfying_cube if cube else find_satisfying_assignment
        return finder(engine)

    def __repr__(self) -> str:
        return f"NBLSATSolver(engine={self._engine_name!r})"
