"""High-level facade: the :class:`NBLSATSolver`.

This is the main user-facing entry point of the library — it wraps engine
construction, Algorithm 1 and Algorithm 2 behind a two-method API:

.. code-block:: python

    from repro import NBLSATSolver
    from repro.cnf import CNFFormula

    formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
    solver = NBLSATSolver(engine="symbolic")
    print(solver.check(formula).satisfiable)       # Algorithm 1
    print(solver.solve(formula).assignment)        # Algorithm 1 + 2
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.cnf.formula import CNFFormula
from repro.core.assignment import (
    find_satisfying_assignment,
    find_satisfying_cube,
)
from repro.core.checker import ENGINE_NAMES, make_engine
from repro.core.config import NBLConfig
from repro.core.result import AssignmentResult, CheckResult
from repro.exceptions import EngineError


class NBLSATSolver:
    """Facade combining the NBL-SAT check and assignment-determination algorithms.

    Parameters
    ----------
    engine:
        ``"sampled"`` (Monte-Carlo, the paper's simulated realization) or
        ``"symbolic"`` (exact infinite-observation limit).
    config:
        Shared engine configuration (carrier family, sample budget,
        thresholds, seed).

    Notes
    -----
    The solver is stateless across calls: each :meth:`check`/:meth:`solve`
    builds a fresh engine for the given formula, so one solver instance can
    be reused across many instances.
    """

    def __init__(
        self, engine: str = "sampled", config: Optional[NBLConfig] = None
    ) -> None:
        if engine not in ENGINE_NAMES:
            raise EngineError(
                f"unknown engine {engine!r}; available: {ENGINE_NAMES}"
            )
        self._engine_name = engine
        self._config = config

    @property
    def engine_name(self) -> str:
        """Which engine family this solver uses."""
        return self._engine_name

    @property
    def config(self) -> Optional[NBLConfig]:
        """The engine configuration (``None`` means engine defaults)."""
        return self._config

    def check(
        self,
        formula: CNFFormula,
        bindings: Optional[Mapping[int, bool]] = None,
    ) -> CheckResult:
        """Algorithm 1: decide SAT/UNSAT in a single NBL operation."""
        engine = make_engine(formula, self._engine_name, self._config)
        return engine.check(bindings)

    def solve(self, formula: CNFFormula, cube: bool = False) -> AssignmentResult:
        """Algorithm 1 + Algorithm 2: decide and, if SAT, return an assignment.

        Parameters
        ----------
        formula:
            The CNF instance.
        cube:
            When ``True``, use the cube variant (don't-care extraction).
        """
        engine = make_engine(formula, self._engine_name, self._config)
        finder = find_satisfying_cube if cube else find_satisfying_assignment
        return finder(engine)

    def solve_batch(
        self,
        formulas: Iterable[CNFFormula],
        workers: int = 1,
        master_seed: int = 0,
        timeout: Optional[float] = None,
    ):
        """Solve many formulas through the :mod:`repro.runtime` subsystem.

        ``timeout`` only takes effect with ``workers > 1``, where the pool
        abandons a job that overruns the budget plus a grace window; the
        NBL engines themselves have no cooperative wall-clock checkpoints
        (cap the sampled engine via the config's ``max_samples`` instead).

        Convenience bridge from the single-instance facade to the batch
        layer: each formula becomes one job with this solver's engine,
        carrier family and sample budget, executed across ``workers``
        processes. Per-job seeds are derived deterministically from
        ``master_seed`` (the config's own seed is not reused — sharing one
        noise stream across jobs would correlate their verdicts).

        Returns
        -------
        list[repro.runtime.SolveOutcome]
            One outcome per formula, in input order.
        """
        # Imported lazily: repro.runtime builds on this module.
        from repro.runtime import SolveJob, WorkerPool

        jobs = [
            SolveJob(
                formula=formula,
                label=f"formula-{index}",
                solver=f"nbl-{self._engine_name}",
                timeout=timeout,
                # The full config (carrier parameters, convergence policy,
                # thresholds) rides along; only its seed is re-derived
                # per job.
                nbl_config=self._config,
            )
            for index, formula in enumerate(formulas)
        ]
        return WorkerPool(workers=workers, master_seed=master_seed).run(jobs)

    def __repr__(self) -> str:
        return f"NBLSATSolver(engine={self._engine_name!r})"
