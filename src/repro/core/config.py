"""Configuration of the sampled NBL-SAT engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import EngineError
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier
from repro.utils.rng import SeedLike

#: Convergence policies supported by the sampled checker.
CONVERGENCE_MODES = ("fixed", "adaptive")


@dataclass
class NBLConfig:
    """Knobs of the Monte-Carlo (sampled) NBL-SAT engine.

    Attributes
    ----------
    carrier:
        Statistical family of every basis noise source. Defaults to the
        paper's uniform [-0.5, 0.5] carrier. Use
        ``UniformCarrier(normalized=True)`` or ``BipolarCarrier()`` for
        larger instances where ``(1/12)^{nm}`` underflows usefully small
        thresholds.
    max_samples:
        Hard cap on the number of noise samples per check. The paper ran up
        to 1e8; the default here keeps unit tests fast.
    block_size:
        Samples drawn and processed per vectorised batch.
    convergence:
        ``"fixed"`` — always consume ``max_samples``;
        ``"adaptive"`` — stop early once the ±z·SE confidence interval of
        the running mean lies entirely on one side of the decision
        threshold.
    confidence_z:
        Width (in standard errors) of the confidence interval used both for
        adaptive stopping and for reporting.
    decision_fraction:
        The SAT/UNSAT decision threshold, as a fraction of the analytic
        one-satisfying-minterm signal level ``power**(n·m)``. 0.5 splits the
        gap between "zero average" and "one minterm" evenly.
    min_samples:
        Adaptive mode never stops before this many samples.
    seed:
        Seed for the noise bank (``None`` → fresh entropy).
    record_trace:
        When ``True``, every check records the running mean after each block
        (needed by the Figure 1 reproduction).
    """

    carrier: Carrier = field(default_factory=UniformCarrier)
    max_samples: int = 200_000
    block_size: int = 20_000
    convergence: str = "adaptive"
    confidence_z: float = 3.0
    decision_fraction: float = 0.5
    min_samples: int = 10_000
    seed: SeedLike = None
    record_trace: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.carrier, Carrier):
            raise EngineError(
                f"carrier must be a Carrier instance, got {type(self.carrier).__name__}"
            )
        if self.max_samples <= 0:
            raise EngineError(f"max_samples must be positive, got {self.max_samples}")
        if self.block_size <= 0:
            raise EngineError(f"block_size must be positive, got {self.block_size}")
        if self.block_size > self.max_samples:
            self.block_size = self.max_samples
        if self.convergence not in CONVERGENCE_MODES:
            raise EngineError(
                f"convergence must be one of {CONVERGENCE_MODES}, got {self.convergence!r}"
            )
        if self.confidence_z <= 0:
            raise EngineError(
                f"confidence_z must be positive, got {self.confidence_z}"
            )
        if not 0.0 < self.decision_fraction < 1.0:
            raise EngineError(
                f"decision_fraction must lie in (0, 1), got {self.decision_fraction}"
            )
        if self.min_samples <= 0:
            raise EngineError(f"min_samples must be positive, got {self.min_samples}")
        if self.min_samples > self.max_samples:
            self.min_samples = self.max_samples

    def replace(self, **overrides) -> "NBLConfig":
        """A copy of this configuration with the given fields overridden."""
        data = {
            "carrier": self.carrier,
            "max_samples": self.max_samples,
            "block_size": self.block_size,
            "convergence": self.convergence,
            "confidence_z": self.confidence_z,
            "decision_fraction": self.decision_fraction,
            "min_samples": self.min_samples,
            "seed": self.seed,
            "record_trace": self.record_trace,
        }
        data.update(overrides)
        return NBLConfig(**data)


def paper_figure1_config(max_samples: int = 1_000_000, seed: SeedLike = 0) -> NBLConfig:
    """The configuration matching the paper's Section IV simulation.

    Uniform [-0.5, 0.5] carriers, fixed sample budget, trace recording on.
    The paper ran to 1e8 samples; pass a larger ``max_samples`` to match.
    """
    return NBLConfig(
        carrier=UniformCarrier(half_width=0.5),
        max_samples=max_samples,
        block_size=min(100_000, max_samples),
        convergence="fixed",
        record_trace=True,
        seed=seed,
    )
