"""Algorithm 1 — the single-operation NBL-SAT satisfiability check.

:func:`nbl_sat_check` is the functional entry point matching the paper's
``NBL-SAT check(S_N)`` pseudocode: build the NBL objects for a CNF instance,
observe the average of ``S_N = τ_N · Σ_N`` and decide SAT/UNSAT.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.result import CheckResult
from repro.core.sampled import SampledNBLEngine
from repro.core.symbolic import SymbolicNBLEngine
from repro.exceptions import EngineError

#: Engines selectable by name in :func:`nbl_sat_check`.
ENGINE_NAMES = ("sampled", "symbolic")

EngineLike = Union[SampledNBLEngine, SymbolicNBLEngine]


def make_engine(
    formula: CNFFormula,
    engine: str = "sampled",
    config: Optional[NBLConfig] = None,
) -> EngineLike:
    """Instantiate an NBL-SAT engine by name for ``formula``.

    ``"sampled"`` is the Monte-Carlo engine the paper simulated;
    ``"symbolic"`` is the exact infinite-observation limit.
    """
    if engine == "sampled":
        return SampledNBLEngine(formula, config)
    if engine == "symbolic":
        carrier = config.carrier if config is not None else None
        return SymbolicNBLEngine(formula, carrier)
    raise EngineError(f"unknown engine {engine!r}; available: {ENGINE_NAMES}")


def nbl_sat_check(
    formula: CNFFormula,
    engine: str = "sampled",
    config: Optional[NBLConfig] = None,
    bindings: Optional[Mapping[int, bool]] = None,
) -> CheckResult:
    """Run one NBL-SAT satisfiability check (paper Algorithm 1).

    Parameters
    ----------
    formula:
        The CNF instance ``S``.
    engine:
        ``"sampled"`` or ``"symbolic"``.
    config:
        Engine configuration (carrier, sample budget, thresholds).
    bindings:
        Optional variable bindings of ``τ_N`` (used by Algorithm 2; a plain
        check passes none).

    Returns
    -------
    CheckResult
        The SAT/UNSAT decision together with the observed mean of ``S_N``.
    """
    return make_engine(formula, engine, config).check(bindings)
