"""The Monte-Carlo (sampled) NBL-SAT engine.

This is the software realization the paper validated in MATLAB (Section IV):
the basis noise sources are sampled, ``τ_N`` and ``Σ_N`` are evaluated on
each sample, and the average of ``S_N = τ_N · Σ_N`` is accumulated until it
either converges or the sample budget is exhausted.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.result import CheckResult
from repro.core.sigma import sigma_samples
from repro.exceptions import EngineError
from repro.hyperspace.reference import reference_hyperspace
from repro.noise.bank import NoiseBank
from repro.utils.stats import RunningStats


class SampledNBLEngine:
    """Evaluates NBL-SAT checks by Monte-Carlo sampling of the noise sources.

    One engine instance is bound to one CNF formula (the noise-source layout
    ``2·m·n`` depends on it). Each call to :meth:`check` runs an independent
    estimation of the mean of ``S_N``, optionally with variables bound inside
    ``τ_N`` (the reduced hyperspace of Algorithm 2).

    Parameters
    ----------
    formula:
        The CNF instance ``S``.
    config:
        Engine configuration; defaults to :class:`~repro.core.config.NBLConfig`.
    """

    name = "sampled"

    def __init__(self, formula: CNFFormula, config: Optional[NBLConfig] = None) -> None:
        if formula.num_variables == 0:
            raise EngineError("NBL-SAT requires at least one variable")
        if formula.num_clauses == 0:
            raise EngineError(
                "NBL-SAT requires at least one clause (an empty conjunction is trivially SAT)"
            )
        self._formula = formula
        self._config = config if config is not None else NBLConfig()
        self._bank = NoiseBank(
            num_clauses=formula.num_clauses,
            num_variables=formula.num_variables,
            carrier=self._config.carrier,
            seed=self._config.seed,
        )

    # -- metadata -------------------------------------------------------------
    @property
    def formula(self) -> CNFFormula:
        """The CNF instance this engine is bound to."""
        return self._formula

    @property
    def config(self) -> NBLConfig:
        """The engine configuration."""
        return self._config

    @property
    def noise_bank(self) -> NoiseBank:
        """The bank of 2·m·n basis noise sources."""
        return self._bank

    @property
    def minterm_signal(self) -> float:
        """Analytic contribution of one satisfying minterm to the mean of S_N.

        Equals ``carrier.power ** (n·m)``: each of the ``n·m`` basis sources
        shared between a τ_N minterm and the matching Σ_N minterm contributes
        its power ``E[x²]``.
        """
        exponent = self._formula.num_variables * self._formula.num_clauses
        return float(self._config.carrier.power**exponent)

    @property
    def decision_threshold(self) -> float:
        """The SAT/UNSAT threshold applied to the estimated mean."""
        return self._config.decision_fraction * self.minterm_signal

    # -- core operation ---------------------------------------------------------
    def sn_block(self, bindings: Optional[Mapping[int, bool]] = None, block_size: Optional[int] = None):
        """Draw one fresh block and return the ``S_N`` samples on it.

        Exposed for tests and for the analog cross-validation; most callers
        should use :meth:`check`.
        """
        size = block_size if block_size is not None else self._config.block_size
        block = self._bank.sample_block(size)
        tau = reference_hyperspace(block, bindings)
        sigma = sigma_samples(block, self._formula)
        return tau * sigma

    def check(self, bindings: Optional[Mapping[int, bool]] = None) -> CheckResult:
        """Algorithm 1: estimate the mean of ``S_N`` and decide SAT/UNSAT.

        Parameters
        ----------
        bindings:
            Optional variable bindings applied to ``τ_N`` (Algorithm 2's
            reduced hyperspace). Binding does not change ``Σ_N``.

        Returns
        -------
        CheckResult
            Decision, estimated mean, confidence information and (when
            ``config.record_trace``) the running-mean trace.
        """
        bindings = dict(bindings or {})
        self._validate_bindings(bindings)
        config = self._config
        stats = RunningStats()
        threshold = self.decision_threshold
        trace_samples: list[int] = []
        trace_means: list[float] = []
        converged = False

        while stats.count < config.max_samples:
            remaining = config.max_samples - stats.count
            size = min(config.block_size, remaining)
            block = self._bank.sample_block(size)
            tau = reference_hyperspace(block, bindings)
            sigma = sigma_samples(block, self._formula)
            stats.push_batch(tau * sigma)

            if config.record_trace:
                trace_samples.append(stats.count)
                trace_means.append(stats.mean)

            if config.convergence == "adaptive" and stats.count >= config.min_samples:
                margin = config.confidence_z * stats.std_error
                if stats.mean - margin > threshold or stats.mean + margin < threshold:
                    converged = True
                    break
        else:
            converged = config.convergence == "fixed"
        if config.convergence == "fixed":
            converged = True

        return CheckResult(
            satisfiable=stats.mean > threshold,
            mean=stats.mean,
            threshold=threshold,
            samples_used=stats.count,
            std_error=stats.std_error,
            converged=converged,
            expected_minterm_signal=self.minterm_signal,
            trace_samples=trace_samples,
            trace_means=trace_means,
            engine=self.name,
            bindings=bindings,
        )

    # -- helpers -------------------------------------------------------------------
    def _validate_bindings(self, bindings: Mapping[int, bool]) -> None:
        for variable in bindings:
            if not 1 <= variable <= self._formula.num_variables:
                raise EngineError(
                    f"bound variable x{variable} out of range "
                    f"1..{self._formula.num_variables}"
                )

    def __repr__(self) -> str:
        return (
            f"SampledNBLEngine(n={self._formula.num_variables}, "
            f"m={self._formula.num_clauses}, carrier={self._config.carrier.name})"
        )
