"""Sinusoid-Based Logic (SBL) realization of NBL-SAT (paper Section V).

Instead of uncorrelated noise, each basis source is a sinusoid of a distinct
frequency; orthogonality over the observation window plays the role of
statistical independence. The paper sketches the key design parameters — the
highest realizable frequency ``F``, the spacing ``f`` between adjacent
carriers, and the resulting variable budget ``F/f`` — which
:class:`~repro.sbl.frequency_plan.FrequencyPlan` captures.

Two planning strategies are provided:

* ``"spaced"`` — equally spaced carriers, the paper's literal proposal.
  Equal spacing makes many *intermodulation* products of distinct minterms
  coincide exactly (e.g. ``f1 + f4 = f2 + f3``), which injects spurious
  correlation into the SAT check;
* ``"dithered"`` (default) — equally spaced carriers with a small random
  per-carrier frequency offset, which breaks those coincidences while
  keeping the spectrum inside the same band. The carrier-ablation benchmark
  quantifies the difference.
"""

from repro.sbl.frequency_plan import FrequencyPlan
from repro.sbl.carriers import SinusoidBank
from repro.sbl.engine import SBLNBLEngine

__all__ = ["FrequencyPlan", "SinusoidBank", "SBLNBLEngine"]
