"""The sinusoid-based-logic NBL-SAT engine."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cnf.formula import CNFFormula
from repro.core.result import CheckResult
from repro.core.sigma import sigma_samples
from repro.exceptions import EngineError
from repro.hyperspace.reference import reference_hyperspace
from repro.sbl.carriers import SinusoidBank
from repro.sbl.frequency_plan import FrequencyPlan
from repro.utils.rng import SeedLike
from repro.utils.stats import RunningStats


class SBLNBLEngine:
    """NBL-SAT check using sinusoidal carriers instead of noise.

    The Σ_N / τ_N construction is identical to the sampled noise engine —
    only the carrier bank differs. Because sinusoids are deterministic, a
    check is reproducible sample-for-sample given the frequency plan and the
    phase seed.

    For a satisfying minterm, each of the ``n·m`` matched carrier pairs
    contributes its time-average power ``amplitude²/2``, so the one-minterm
    signal level is ``(amplitude²/2)^{n·m}``; the decision threshold is a
    configurable fraction of that, exactly as in the sampled engine.

    Parameters
    ----------
    formula:
        The CNF instance.
    plan:
        Frequency plan (defaults to a dithered plan sized for the instance).
    max_samples / block_size:
        Observation budget, in samples at the bank's sample rate.
    decision_fraction:
        SAT threshold as a fraction of the one-minterm signal level.
    amplitude:
        Carrier amplitude.
    seed:
        Seed for carrier phases (and plan dither when using the default
        plan).
    """

    name = "sbl"

    def __init__(
        self,
        formula: CNFFormula,
        plan: Optional[FrequencyPlan] = None,
        max_samples: int = 200_000,
        block_size: int = 20_000,
        decision_fraction: float = 0.5,
        amplitude: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        if formula.num_variables == 0 or formula.num_clauses == 0:
            raise EngineError("SBL-SAT requires at least one variable and clause")
        if max_samples <= 0 or block_size <= 0:
            raise EngineError("max_samples and block_size must be positive")
        if not 0.0 < decision_fraction < 1.0:
            raise EngineError("decision_fraction must lie in (0, 1)")
        self.formula = formula
        self._max_samples = max_samples
        self._block_size = min(block_size, max_samples)
        self._decision_fraction = decision_fraction
        self._amplitude = amplitude
        self._seed = seed
        self._plan = plan
        self._check_counter = 0

    # -- derived quantities ------------------------------------------------------
    @property
    def minterm_signal(self) -> float:
        """One-satisfying-minterm signal level ``(amplitude²/2)^{n·m}``."""
        exponent = self.formula.num_variables * self.formula.num_clauses
        return float((self._amplitude**2 / 2.0) ** exponent)

    @property
    def decision_threshold(self) -> float:
        """The SAT/UNSAT threshold applied to the observed mean."""
        return self._decision_fraction * self.minterm_signal

    def _make_bank(self) -> SinusoidBank:
        self._check_counter += 1
        seed = (
            None
            if self._seed is None
            else (hash((self._seed, self._check_counter)) & 0x7FFFFFFF)
        )
        return SinusoidBank(
            num_clauses=self.formula.num_clauses,
            num_variables=self.formula.num_variables,
            plan=self._plan,
            amplitude=self._amplitude,
            seed=seed,
        )

    # -- operations -----------------------------------------------------------------
    def check(self, bindings: Optional[Mapping[int, bool]] = None) -> CheckResult:
        """Algorithm 1 with sinusoidal carriers."""
        bindings = dict(bindings or {})
        bank = self._make_bank()
        stats = RunningStats()
        threshold = self.decision_threshold
        while stats.count < self._max_samples:
            size = min(self._block_size, self._max_samples - stats.count)
            block = bank.sample_block(size)
            tau = reference_hyperspace(block, bindings)
            sigma = sigma_samples(block, self.formula)
            stats.push_batch(tau * sigma)
        return CheckResult(
            satisfiable=stats.mean > threshold,
            mean=stats.mean,
            threshold=threshold,
            samples_used=stats.count,
            std_error=stats.std_error,
            converged=True,
            expected_minterm_signal=self.minterm_signal,
            engine=self.name,
            bindings=bindings,
        )

    def __repr__(self) -> str:
        return (
            f"SBLNBLEngine(n={self.formula.num_variables}, "
            f"m={self.formula.num_clauses})"
        )
