"""Frequency allocation for the sinusoid-based-logic engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FrequencyPlanError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_float, check_positive_int


@dataclass
class FrequencyPlan:
    """Assigns one carrier frequency to each of the ``2·m·n`` basis sources.

    Parameters
    ----------
    num_sources:
        Number of basis sources to allocate (``2·m·n`` for an NBL-SAT
        instance with ``m`` clauses and ``n`` variables).
    max_frequency:
        The highest realizable carrier frequency ``F`` (hertz). The paper
        quotes "10s of GHz" for current technology; the simulation is
        frequency-scale-invariant, so the default of 1.0 simply means
        frequencies are expressed as fractions of ``F``.
    min_frequency:
        Lowest usable carrier frequency (must be positive so every carrier
        completes many cycles per observation window).
    strategy:
        ``"spaced"`` (equally spaced, the paper's proposal) or
        ``"dithered"`` (equally spaced plus a random offset of up to
        ``dither_fraction`` of the spacing — the robust default).
    dither_fraction:
        Maximum relative dither applied per carrier under ``"dithered"``.
    seed:
        RNG seed for the dither.
    """

    num_sources: int
    max_frequency: float = 1.0
    min_frequency: float = 0.05
    strategy: str = "dithered"
    dither_fraction: float = 0.25
    seed: SeedLike = 0
    frequencies: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_sources, "num_sources")
        check_positive_float(self.max_frequency, "max_frequency")
        check_positive_float(self.min_frequency, "min_frequency")
        if self.min_frequency >= self.max_frequency:
            raise FrequencyPlanError(
                f"min_frequency {self.min_frequency} must be below "
                f"max_frequency {self.max_frequency}"
            )
        if self.strategy not in ("spaced", "dithered"):
            raise FrequencyPlanError(
                f"strategy must be 'spaced' or 'dithered', got {self.strategy!r}"
            )
        if not 0.0 <= self.dither_fraction < 0.5:
            raise FrequencyPlanError(
                f"dither_fraction must lie in [0, 0.5), got {self.dither_fraction}"
            )
        self.frequencies = self._allocate()

    # -- derived quantities -------------------------------------------------------
    @property
    def spacing(self) -> float:
        """Nominal spacing ``f`` between adjacent carriers."""
        if self.num_sources == 1:
            return self.max_frequency - self.min_frequency
        return (self.max_frequency - self.min_frequency) / (self.num_sources - 1)

    @property
    def variable_budget(self) -> int:
        """The paper's ``F / f`` figure: how many sources fit the band."""
        return int(np.floor(self.max_frequency / max(self.spacing, 1e-300)))

    def recommended_observation_time(self, cycles_of_spacing: float = 50.0) -> float:
        """Observation window giving ``cycles_of_spacing`` beat periods of ``f``.

        Orthogonality between carriers separated by ``f`` needs the window to
        cover many periods of the *difference* frequency; 50 is a practical
        default for three-digit mean convergence.
        """
        check_positive_float(cycles_of_spacing, "cycles_of_spacing")
        return cycles_of_spacing / max(self.spacing, 1e-300)

    def recommended_sample_rate(self, oversampling: float = 8.0) -> float:
        """Sample rate comfortably above Nyquist for the highest carrier."""
        check_positive_float(oversampling, "oversampling")
        return oversampling * self.max_frequency

    # -- allocation ------------------------------------------------------------------
    def _allocate(self) -> np.ndarray:
        if self.num_sources == 1:
            base = np.array([self.max_frequency], dtype=np.float64)
        else:
            base = np.linspace(
                self.min_frequency, self.max_frequency, self.num_sources
            )
        if self.strategy == "spaced":
            return base
        rng = as_generator(self.seed)
        jitter = rng.uniform(-self.dither_fraction, self.dither_fraction, self.num_sources)
        dithered = base + jitter * self.spacing
        return np.clip(dithered, self.min_frequency / 2, self.max_frequency)

    def frequency_of(self, source_index: int) -> float:
        """Frequency assigned to the ``source_index``-th source (0-based)."""
        if not 0 <= source_index < self.num_sources:
            raise FrequencyPlanError(
                f"source index {source_index} out of range 0..{self.num_sources - 1}"
            )
        return float(self.frequencies[source_index])
