"""The bank of sinusoidal carriers for the SBL engine.

:class:`SinusoidBank` mirrors :class:`repro.noise.bank.NoiseBank`'s interface
— blocks of shape ``(m, n, 2, B)`` — but its "samples" are consecutive time
points of deterministic sinusoids, one frequency (and random initial phase)
per basis source. Because the block layout is identical, the Σ_N / τ_N
builders of :mod:`repro.hyperspace` and :mod:`repro.core.sigma` work on SBL
blocks unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NoiseConfigError
from repro.sbl.frequency_plan import FrequencyPlan
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_float, check_positive_int


class SinusoidBank:
    """Deterministic sinusoid sources arranged like a noise bank.

    Parameters
    ----------
    num_clauses, num_variables:
        Instance dimensions ``m`` and ``n``; ``2·m·n`` carriers are allocated.
    plan:
        Frequency plan; defaults to a dithered plan over ``2·m·n`` sources.
    sample_rate:
        Samples per unit time; defaults to the plan's recommended rate.
    amplitude:
        Peak amplitude of every carrier (power is ``amplitude²/2``).
    seed:
        Seed for the random initial phases (and the plan dither when the
        default plan is built here).
    """

    def __init__(
        self,
        num_clauses: int,
        num_variables: int,
        plan: Optional[FrequencyPlan] = None,
        sample_rate: Optional[float] = None,
        amplitude: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        check_positive_int(num_clauses, "num_clauses")
        check_positive_int(num_variables, "num_variables")
        if amplitude <= 0:
            raise NoiseConfigError(f"amplitude must be positive, got {amplitude}")
        self._num_clauses = num_clauses
        self._num_variables = num_variables
        self._amplitude = float(amplitude)
        num_sources = 2 * num_clauses * num_variables
        if plan is None:
            plan = FrequencyPlan(num_sources=num_sources, seed=seed)
        if plan.num_sources != num_sources:
            raise NoiseConfigError(
                f"frequency plan allocates {plan.num_sources} sources but the "
                f"instance needs {num_sources}"
            )
        self._plan = plan
        rate = sample_rate if sample_rate is not None else plan.recommended_sample_rate()
        self._sample_rate = check_positive_float(rate, "sample_rate")
        if self._sample_rate < 2.0 * plan.max_frequency:
            raise NoiseConfigError(
                f"sample_rate {self._sample_rate} is below Nyquist for the "
                f"highest carrier {plan.max_frequency}"
            )
        rng = as_generator(seed)
        self._phases = rng.uniform(0.0, 2.0 * np.pi, num_sources)
        # Frequencies reshaped to the (m, n, 2) layout of noise blocks.
        self._frequencies = np.asarray(plan.frequencies, dtype=np.float64).reshape(
            num_clauses, num_variables, 2
        )
        self._phase_grid = self._phases.reshape(num_clauses, num_variables, 2)
        self._samples_drawn = 0

    # -- metadata --------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        """Number of clauses ``m``."""
        return self._num_clauses

    @property
    def num_variables(self) -> int:
        """Number of variables ``n``."""
        return self._num_variables

    @property
    def plan(self) -> FrequencyPlan:
        """The frequency plan in use."""
        return self._plan

    @property
    def sample_rate(self) -> float:
        """Samples per unit time."""
        return self._sample_rate

    @property
    def carrier_power(self) -> float:
        """Time-average power ``⟨x²⟩ = amplitude²/2`` of one carrier."""
        return self._amplitude**2 / 2.0

    @property
    def samples_drawn(self) -> int:
        """Total time samples generated so far."""
        return self._samples_drawn

    # -- sampling ----------------------------------------------------------------
    def sample_block(self, block_size: int) -> np.ndarray:
        """Next ``block_size`` time samples of every carrier, shape ``(m, n, 2, B)``.

        Consecutive calls continue the same time axis, so streaming a long
        observation window in blocks is exact.
        """
        check_positive_int(block_size, "block_size")
        start = self._samples_drawn
        times = (start + np.arange(block_size, dtype=np.float64)) / self._sample_rate
        phase = (
            2.0 * np.pi * self._frequencies[..., np.newaxis] * times
            + self._phase_grid[..., np.newaxis]
        )
        self._samples_drawn += block_size
        return self._amplitude * np.cos(phase)

    def __repr__(self) -> str:
        return (
            f"SinusoidBank(m={self._num_clauses}, n={self._num_variables}, "
            f"strategy={self._plan.strategy!r}, sample_rate={self._sample_rate:.3g})"
        )
