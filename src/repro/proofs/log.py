"""DRAT proof logging: the sink solvers and the preprocessor write to.

A DRAT proof is a line-oriented text trace of clause *additions* and
*deletions* performed while refuting a formula.  :class:`ProofLog` is the
single sink the whole stack shares: :class:`~repro.solvers.cdcl.CDCLSolver`
writes learned clauses and the final empty clause, and
:class:`~repro.preprocess.Preprocessor` writes the strengthenings,
eliminations and resolvents of its inprocessing passes.  Each emitted line
is built in memory and written with one ``write()`` call, so an
interrupted run (timeout, crash) can truncate the proof only at a line
boundary — never mid-line.

``ProofLog.translated(mapping)`` returns a view that renames literals as
it forwards them, which is how lines produced by a solver running on the
*renumbered* reduced formula are recorded in the *original* numbering the
checker works against.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Mapping, Optional, Union

from repro.exceptions import ProofError

__all__ = ["ProofLog", "resolve_proof_log"]


def _format_clause(literals: Iterable[int]) -> str:
    """DIMACS-style body of one proof line: sorted literals then ``0``."""
    lits = sorted(set(int(lit) for lit in literals), key=lambda l: (abs(l), l))
    for lit in lits:
        if lit == 0:
            raise ProofError("proof clause contains literal 0")
    if lits:
        return " ".join(str(lit) for lit in lits) + " 0"
    return "0"


class ProofLog:
    """A DRAT proof under construction.

    Parameters
    ----------
    sink:
        Where lines go: a path (the file is created/truncated), an open
        text stream, or ``None`` to accumulate lines in memory (retrieve
        them via :meth:`lines`).

    Lines are always written whole — the text of each addition, deletion
    or comment is assembled first and handed to the sink in a single
    ``write()`` call — so a proof interrupted between lines stays
    syntactically valid.  :meth:`mark_incomplete` stamps the proof with a
    ``c incomplete`` comment when a run could not finish (e.g. a solver
    timeout); the checker surfaces the flag on its verdict.
    """

    def __init__(self, sink: Union[str, os.PathLike, IO[str], None] = None) -> None:
        self._lines: Optional[list[str]] = None
        self._stream: Optional[IO[str]] = None
        self._owns_stream = False
        if sink is None:
            self._lines = []
        elif hasattr(sink, "write"):
            self._stream = sink  # type: ignore[assignment]
        else:
            self._stream = open(os.fspath(sink), "w", encoding="utf-8")
            self._owns_stream = True
        self.additions = 0
        self.deletions = 0
        self.incomplete = False
        self._closed = False

    # -- emission -----------------------------------------------------

    def _write(self, line: str) -> None:
        if self._closed:
            raise ProofError("proof log is closed")
        if self._lines is not None:
            self._lines.append(line)
        else:
            assert self._stream is not None
            self._stream.write(line + "\n")

    def add(self, literals: Iterable[int]) -> None:
        """Record the addition of a clause (an empty iterable ends the proof)."""
        self._write(_format_clause(literals))
        self.additions += 1

    def delete(self, literals: Iterable[int]) -> None:
        """Record the deletion of a clause."""
        self._write("d " + _format_clause(literals))
        self.deletions += 1

    def comment(self, text: str) -> None:
        """Record a ``c``-prefixed comment line (ignored by checkers)."""
        self._write("c " + text.replace("\n", " "))

    def mark_incomplete(self, reason: str = "") -> None:
        """Flag the proof as truncated (idempotent; e.g. on solver timeout)."""
        if self.incomplete:
            return
        self.incomplete = True
        suffix = f" {reason}" if reason else ""
        self._write("c incomplete" + suffix)

    # -- views and teardown -------------------------------------------

    def translated(self, mapping: Mapping[int, int]) -> "TranslatedProofLog":
        """A forwarding view renaming variables through ``mapping``.

        ``mapping`` maps the *emitting* numbering to the *recorded* one
        (e.g. reduced variable → original variable).  Emitters hand the
        view to a solver running on a renumbered formula; the underlying
        log keeps accumulating lines in the original numbering.
        """
        return TranslatedProofLog(self, mapping)

    def lines(self) -> list[str]:
        """The accumulated lines (in-memory sinks only)."""
        if self._lines is None:
            raise ProofError("proof log is file-backed; read the file instead")
        return list(self._lines)

    def text(self) -> str:
        """The accumulated proof text (in-memory sinks only)."""
        return "\n".join(self.lines()) + ("\n" if self.lines() else "")

    def flush(self) -> None:
        """Flush the underlying stream, if any."""
        if self._stream is not None and not self._closed:
            self._stream.flush()

    def close(self) -> None:
        """Close the log (and the file stream it opened). Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._stream is not None:
            if self._owns_stream:
                self._stream.close()
            else:
                self._stream.flush()
        from repro.telemetry import instrument as _telemetry

        _telemetry.record_proof_log(self.additions, self.deletions, self.incomplete)

    def __enter__(self) -> "ProofLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TranslatedProofLog:
    """Literal-renaming view over a :class:`ProofLog`.

    Forwards every operation to the underlying log after mapping each
    literal's variable through the translation table.  Closing the view is
    a no-op — the owner of the underlying log closes it.
    """

    def __init__(self, base: ProofLog, mapping: Mapping[int, int]) -> None:
        self._base = base
        self._mapping = dict(mapping)

    def _translate(self, literals: Iterable[int]) -> list[int]:
        out = []
        for lit in literals:
            var = abs(lit)
            mapped = self._mapping.get(var)
            if mapped is None:
                raise ProofError(
                    f"proof translation has no mapping for variable {var}"
                )
            out.append(mapped if lit > 0 else -mapped)
        return out

    def add(self, literals: Iterable[int]) -> None:
        """Record a clause addition in the translated numbering."""
        self._base.add(self._translate(literals))

    def delete(self, literals: Iterable[int]) -> None:
        """Record a clause deletion in the translated numbering."""
        self._base.delete(self._translate(literals))

    def comment(self, text: str) -> None:
        """Forward a comment line unchanged."""
        self._base.comment(text)

    def mark_incomplete(self, reason: str = "") -> None:
        """Forward the incomplete flag to the underlying log."""
        self._base.mark_incomplete(reason)

    @property
    def incomplete(self) -> bool:
        """Whether the underlying log is flagged incomplete."""
        return self._base.incomplete

    def flush(self) -> None:
        """Flush the underlying log."""
        self._base.flush()

    def close(self) -> None:
        """No-op: the owner of the underlying log closes it."""


def resolve_proof_log(spec) -> tuple[Optional[ProofLog], bool]:
    """Normalise a ``proof=`` argument into ``(log, owned)``.

    ``spec`` may be ``None`` (no logging), an existing :class:`ProofLog`
    (or translated view) that the caller manages, or a path, in which case
    a file-backed log is opened here and ``owned`` is ``True`` — the
    consumer must close it when the run ends.
    """
    if spec is None:
        return None, False
    if isinstance(spec, (ProofLog, TranslatedProofLog)):
        return spec, False  # type: ignore[return-value]
    return ProofLog(spec), True
