"""repro.proofs — DRAT proof emission and checking: verdicts with receipts.

An UNSAT answer from a solve service is just an assertion until it comes
with a checkable artifact.  This package closes that gap for the whole
stack:

* :class:`ProofLog` — the DRAT sink :class:`~repro.solvers.cdcl.CDCLSolver`
  writes learned clauses and the final empty clause to, and that
  :class:`~repro.preprocess.Preprocessor` extends with lines for its
  eliminations, so end-to-end preprocessed UNSAT runs stay checkable;
* :func:`check_proof` / :func:`check_proof_file` — an in-repo RUP/DRAT
  checker that replays the proof against the original formula by unit
  propagation (RAT fallback on the first literal);
* :func:`parse_proof` / :func:`parse_proof_file` — strict DRAT parsing
  that rejects torn lines and bad tokens with
  :class:`~repro.exceptions.ProofError`;
* :class:`CheckResult` / :class:`ProofStep` — the checker's verdict and
  one parsed proof line;
* :func:`resolve_proof_log` — the normaliser behind every ``proof=``
  hook (:meth:`repro.solvers.base.SATSolver.solve`,
  :class:`repro.runtime.SolveJob`, ``repro.cli``).

Quickstart::

    from repro.proofs import ProofLog, check_proof
    from repro.solvers import CDCLSolver

    log = ProofLog()                      # in-memory; or ProofLog(path)
    result = CDCLSolver().solve(formula, proof=log)
    if result.status == "UNSAT":
        assert check_proof(formula, log.lines()).verified
"""

from repro.proofs.check import (
    CheckResult,
    ProofStep,
    check_proof,
    check_proof_file,
    parse_proof,
    parse_proof_file,
)
from repro.proofs.log import ProofLog, resolve_proof_log

__all__ = [
    "CheckResult",
    "ProofLog",
    "ProofStep",
    "check_proof",
    "check_proof_file",
    "parse_proof",
    "parse_proof_file",
    "resolve_proof_log",
]
