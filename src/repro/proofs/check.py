"""RUP/DRAT proof checking by unit propagation over the original formula.

The checker replays a DRAT proof against the formula it claims to refute.
Every *addition* must be redundant with respect to the clauses currently
active — first by RUP (assume the negation of the added clause, unit
propagate, and demand a conflict), falling back to RAT on the clause's
first literal (every resolvent on that pivot must itself be RUP).
*Deletions* simply shrink the active set, which only makes later checks
stricter to pass and is why standard DRAT checkers leave them unverified.
A proof is a *refutation* once it derives the empty clause.

The implementation favours clarity over raw speed — it is the trusted
half of the differential fuzz harness, not a competition checker — but
still uses watched-style occurrence indexing so fuzz-sized proofs check
in milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import IO, Iterable, Optional, Sequence, Union

from repro.cnf.formula import CNFFormula
from repro.exceptions import ProofError

__all__ = [
    "CheckResult",
    "ProofStep",
    "check_proof",
    "check_proof_file",
    "parse_proof",
    "parse_proof_file",
]

#: Verdict labels carried by :class:`CheckResult`.
VERIFIED = "VERIFIED"
REJECTED = "REJECTED"


@dataclass(frozen=True)
class ProofStep:
    """One parsed DRAT line: a clause addition or deletion."""

    delete: bool
    literals: tuple[int, ...]


@dataclass
class CheckResult:
    """Outcome of checking one proof against one formula."""

    verified: bool
    status: str
    reason: str = ""
    steps_checked: int = 0
    additions: int = 0
    deletions: int = 0
    incomplete: bool = False
    elapsed_seconds: float = 0.0
    failed_step: Optional[ProofStep] = None
    #: Kept for symmetry with other result objects' reprs.
    extras: dict = field(default_factory=dict, repr=False)

    def __bool__(self) -> bool:
        return self.verified


def parse_proof(text: Union[str, Iterable[str]]) -> tuple[list[ProofStep], bool]:
    """Parse DRAT text into steps, returning ``(steps, incomplete_flag)``.

    Raises :class:`~repro.exceptions.ProofError` on malformed input: a
    non-integer token, a line missing its ``0`` terminator (a torn final
    line from a killed writer), or a stray ``0`` mid-clause.  Comment
    lines are skipped, except that ``c incomplete`` sets the flag a
    truncated-by-timeout proof carries.
    """
    if isinstance(text, str):
        lines = text.splitlines()
    else:
        lines = list(text)
    steps: list[ProofStep] = []
    incomplete = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            body = line[1:].strip()
            if body == "incomplete" or body.startswith("incomplete "):
                incomplete = True
            continue
        tokens = line.split()
        delete = False
        if tokens[0] == "d":
            delete = True
            tokens = tokens[1:]
            if not tokens:
                raise ProofError(f"line {lineno}: deletion with no clause")
        literals: list[int] = []
        terminated = False
        for token in tokens:
            try:
                value = int(token)
            except ValueError:
                raise ProofError(
                    f"line {lineno}: bad token {token!r} in proof"
                ) from None
            if terminated:
                raise ProofError(f"line {lineno}: tokens after terminating 0")
            if value == 0:
                terminated = True
            else:
                literals.append(value)
        if not terminated:
            raise ProofError(
                f"line {lineno}: missing terminating 0 (torn proof line)"
            )
        steps.append(ProofStep(delete=delete, literals=tuple(literals)))
    return steps, incomplete


def parse_proof_file(path) -> tuple[list[ProofStep], bool]:
    """Parse the DRAT file at ``path`` (see :func:`parse_proof`)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ProofError(f"cannot read proof file {path!s}: {exc}") from exc
    return parse_proof(text)


class _ClauseSet:
    """Active clauses with a literal-occurrence index for propagation."""

    def __init__(self) -> None:
        self.clauses: dict[int, tuple[int, ...]] = {}
        self.occurrences: dict[int, set[int]] = {}
        self.by_key: dict[frozenset, list[int]] = {}
        self.units: set[int] = set()
        self._next_id = 0

    def add(self, literals: Sequence[int]) -> None:
        cid = self._next_id
        self._next_id += 1
        clause = tuple(literals)
        self.clauses[cid] = clause
        self.by_key.setdefault(frozenset(clause), []).append(cid)
        if len(clause) == 1:
            self.units.add(cid)
        for lit in clause:
            self.occurrences.setdefault(lit, set()).add(cid)

    def remove(self, literals: Sequence[int]) -> bool:
        """Drop one copy of the clause; ``False`` when it is not active."""
        key = frozenset(literals)
        ids = self.by_key.get(key)
        if not ids:
            return False
        cid = ids.pop()
        if not ids:
            del self.by_key[key]
        clause = self.clauses.pop(cid)
        self.units.discard(cid)
        for lit in clause:
            occs = self.occurrences.get(lit)
            if occs is not None:
                occs.discard(cid)
        return True


def _propagate(clauses: _ClauseSet, assignment: dict[int, bool], queue: list[int]) -> bool:
    """Unit propagation; ``True`` when a conflict is reached.

    ``assignment`` maps variables to values and is extended in place;
    ``queue`` holds literals just made *false* (their negations were
    assigned true) whose occurrence lists must be rescanned.
    """
    head = 0
    while head < len(queue):
        falsified = queue[head]
        head += 1
        for cid in list(clauses.occurrences.get(falsified, ())):
            clause = clauses.clauses.get(cid)
            if clause is None:
                continue
            unassigned: Optional[int] = None
            satisfied = False
            for lit in clause:
                var = abs(lit)
                value = assignment.get(var)
                if value is None:
                    if unassigned is not None:
                        # Two free literals: clause cannot be unit yet.
                        unassigned = None
                        satisfied = True  # treat as not-unit; skip
                        break
                    unassigned = lit
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if unassigned is None:
                return True  # every literal false: conflict
            var = abs(unassigned)
            assignment[var] = unassigned > 0
            queue.append(-unassigned)
    return False


def _rup(clauses: _ClauseSet, literals: Sequence[int]) -> bool:
    """Whether ``literals`` has the RUP property over the active clauses."""
    assignment: dict[int, bool] = {}
    queue: list[int] = []
    for lit in literals:
        var = abs(lit)
        want = lit < 0  # assume the negation of the clause
        existing = assignment.get(var)
        if existing is None:
            assignment[var] = want
            queue.append(lit)  # lit itself is now false
        elif existing != want:
            return True  # the clause is a tautology: negation is contradictory
    # Seed with the database's unit clauses: propagation below only rescans
    # clauses touched by a newly falsified literal, so pre-existing units
    # (crucial for the final empty-clause step) must be enqueued here.
    for cid in clauses.units:
        clause = clauses.clauses.get(cid)
        if clause is None:
            continue
        unit = clause[0]
        var = abs(unit)
        value = assignment.get(var)
        if value is None:
            assignment[var] = unit > 0
            queue.append(-unit)
        elif value != (unit > 0):
            return True
    return _propagate(clauses, assignment, queue)


def _is_tautology(literals: Iterable[int]) -> bool:
    seen = set(literals)
    return any(-lit in seen for lit in seen)


def _rat(clauses: _ClauseSet, literals: Sequence[int]) -> bool:
    """RAT check on the first literal of ``literals`` (the DRAT pivot)."""
    if not literals:
        return False
    pivot = literals[0]
    base = list(literals)
    for cid in list(clauses.occurrences.get(-pivot, ())):
        clause = clauses.clauses.get(cid)
        if clause is None:
            continue
        resolvent = base + [lit for lit in clause if lit != -pivot]
        if _is_tautology(resolvent):
            continue
        if not _rup(clauses, resolvent):
            return False
    return True


def check_proof(
    formula: CNFFormula,
    proof: Union[str, Sequence[ProofStep], Iterable[str]],
    incomplete: bool = False,
) -> CheckResult:
    """Check a DRAT proof against ``formula``.

    ``proof`` is DRAT text, an iterable of DRAT lines, or pre-parsed
    :class:`ProofStep` objects (then ``incomplete`` carries the flag that
    parsing would otherwise extract).  The result is ``verified`` only
    when every addition is RUP or RAT *and* the proof derives the empty
    clause; a well-formed proof that stops short — e.g. one flagged
    ``incomplete`` by a timed-out solver — is rejected with a reason
    saying so.  Malformed text raises
    :class:`~repro.exceptions.ProofError` instead of returning.
    """
    from repro.telemetry import instrument as _telemetry

    if isinstance(proof, (str,)) or (
        not isinstance(proof, Sequence)
        or (len(proof) > 0 and not isinstance(proof[0], ProofStep))
    ):
        steps, parsed_incomplete = parse_proof(proof)  # type: ignore[arg-type]
        incomplete = incomplete or parsed_incomplete
    else:
        steps = list(proof)  # type: ignore[arg-type]

    started = time.perf_counter()
    with _telemetry.span("proof.check") as span:
        result = _check_steps(formula, steps, incomplete)
        result.elapsed_seconds = time.perf_counter() - started
        if span.recording:
            span.set(steps=result.steps_checked, verified=result.verified)
    _telemetry.record_proof_check(
        result.status, result.elapsed_seconds, result.steps_checked
    )
    return result


def _check_steps(
    formula: CNFFormula, steps: Sequence[ProofStep], incomplete: bool
) -> CheckResult:
    active = _ClauseSet()
    for clause in formula.clauses:
        literals = tuple(lit.to_int() for lit in clause.literals)
        if not literals:
            # The formula already contains the empty clause: trivially UNSAT.
            return CheckResult(
                verified=True,
                status=VERIFIED,
                reason="formula contains the empty clause",
                incomplete=incomplete,
            )
        if _is_tautology(literals):
            continue
        active.add(literals)

    additions = 0
    deletions = 0
    for index, step in enumerate(steps):
        if step.delete:
            deletions += 1
            # Deleting a clause never invalidates later checks; deleting
            # one that is not active (e.g. a tautology the checker never
            # tracked) is harmless and is ignored, like standard checkers.
            active.remove(step.literals)
            continue
        additions += 1
        if not step.literals:
            # Empty clause: the refutation is complete iff it is RUP.
            if _rup(active, ()):
                return CheckResult(
                    verified=True,
                    status=VERIFIED,
                    steps_checked=index + 1,
                    additions=additions,
                    deletions=deletions,
                    incomplete=incomplete,
                )
            return CheckResult(
                verified=False,
                status=REJECTED,
                reason=f"step {index + 1}: empty clause is not implied "
                "by unit propagation",
                steps_checked=index + 1,
                additions=additions,
                deletions=deletions,
                incomplete=incomplete,
                failed_step=step,
            )
        if _is_tautology(step.literals):
            # Tautologies are trivially redundant; never tracked as active.
            continue
        if not _rup(active, step.literals) and not _rat(active, step.literals):
            return CheckResult(
                verified=False,
                status=REJECTED,
                reason=f"step {index + 1}: clause "
                f"{' '.join(map(str, step.literals))} 0 is neither RUP nor RAT",
                steps_checked=index + 1,
                additions=additions,
                deletions=deletions,
                incomplete=incomplete,
                failed_step=step,
            )
        active.add(step.literals)

    reason = "proof ends without deriving the empty clause"
    if incomplete:
        reason += " (proof is flagged incomplete)"
    return CheckResult(
        verified=False,
        status=REJECTED,
        reason=reason,
        steps_checked=len(steps),
        additions=additions,
        deletions=deletions,
        incomplete=incomplete,
    )


def check_proof_file(formula: CNFFormula, path) -> CheckResult:
    """Check the DRAT file at ``path`` against ``formula``."""
    steps, incomplete = parse_proof_file(path)
    return check_proof(formula, steps, incomplete=incomplete)
