"""repro.telemetry — structured tracing, metrics and the perf trajectory.

The observability layer of the stack. Three parts, all off by default and
designed to cost one bool check per instrumentation site when disabled:

* :mod:`repro.telemetry.trace` — :class:`Tracer` / :class:`Span`: nested,
  monotonic-clock spans (``solve``, ``preprocess``, ``propagate``,
  ``restart``, ``cache.lookup``, ``pool.task``, ...) recorded into a ring
  buffer and an optional JSONL sink. :func:`start_tracing` /
  :func:`stop_tracing` manage the process-wide tracer.
* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` of counters,
  gauges and histograms with Prometheus-text and JSON exporters;
  :func:`enable_metrics` switches collection on for the process-wide
  registry (:func:`get_metrics`).
* :mod:`repro.telemetry.recorder` — :class:`BenchRecord` and the
  append-only, schema-versioned ``BENCH_*.json`` trajectory files that
  gate hot-path work (``benchmarks/record_trajectory.py`` maintains
  ``BENCH_cdcl.json``).

Instrumentation is wired through the solvers, the runtime subsystem, the
preprocessing pipeline and the incremental sessions; the CLI exposes it as
``--trace FILE`` / ``--metrics FILE`` on ``solve``/``check``/``batch``/
``incremental`` plus the ``repro stats`` reader. The span taxonomy and the
metric catalogue are documented in ``docs/observability.md``.

Quickstart::

    from repro import telemetry
    from repro.cnf.generators import random_ksat
    from repro.solvers.cdcl import CDCLSolver

    tracer = telemetry.start_tracing(sink="trace.jsonl")
    telemetry.enable_metrics()
    CDCLSolver().solve(random_ksat(12, 50, seed=1))
    print(telemetry.get_metrics().to_prometheus())
    telemetry.stop_tracing()
"""

from repro.telemetry.instrument import (
    active,
    event,
    record_batch_outcome,
    record_cache_eviction,
    record_cache_lookup,
    record_cache_snapshot,
    record_learned_db_size,
    record_pool_queue_depth,
    record_pool_task,
    record_preprocess,
    record_session_query,
    record_solve,
    span,
    tracer,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_active,
    write_metrics,
)
from repro.telemetry.recorder import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    append_bench_record,
    load_bench_records,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SPAN_TAXONOMY,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    load_trace,
    set_tracer,
    start_tracing,
    stop_tracing,
    tracing_active,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "SPAN_TAXONOMY",
    "Span",
    "Tracer",
    "active",
    "append_bench_record",
    "disable_metrics",
    "enable_metrics",
    "event",
    "get_metrics",
    "get_tracer",
    "load_bench_records",
    "load_trace",
    "metrics_active",
    "record_batch_outcome",
    "record_cache_eviction",
    "record_cache_lookup",
    "record_cache_snapshot",
    "record_learned_db_size",
    "record_pool_queue_depth",
    "record_pool_task",
    "record_preprocess",
    "record_session_query",
    "record_solve",
    "set_tracer",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracer",
    "tracing_active",
    "write_metrics",
]
