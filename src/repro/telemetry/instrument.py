"""The library's own instrumentation sites funnel through this module.

Every hook here follows the same contract:

* :func:`active` is the single cheap guard — one function call reading two
  module-level flags. Hot paths call it (or :func:`tracing_active` /
  :func:`span`, whose disabled forms allocate nothing) before building any
  attribute dictionary, so a process that never enables telemetry pays a
  bool check per site and nothing else.
* ``record_*`` helpers translate domain objects (solver results, cache
  snapshots, preprocessing stats) into the canonical metric families named
  in ``docs/observability.md``. They early-return when metrics collection
  is off, so callers may invoke them under the coarser :func:`active`
  guard without double-checking.

Keeping the vocabulary here — rather than scattered across solvers,
runtime and preprocessing — is what keeps metric names consistent across
subsystems and documented in one place.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.telemetry.trace import NullTracer, Span, Tracer, _NullSpan


def active() -> bool:
    """``True`` when tracing or metrics collection is on (the site guard)."""
    return _trace._current_tracer.enabled or _metrics._enabled


def tracing_active() -> bool:
    """``True`` when a recording tracer is installed."""
    return _trace._current_tracer.enabled


def tracer() -> Union[Tracer, NullTracer]:
    """The current tracer (shared null tracer when disabled)."""
    return _trace._current_tracer


def span(name: str, **attributes: Any) -> Union[Span, _NullSpan]:
    """A span on the current tracer (the shared no-op span when disabled).

    Call with no keyword attributes on hot paths — the disabled form then
    allocates nothing — and attach attributes inside an ``if
    span.recording:`` block instead.
    """
    return _trace._current_tracer.span(name, **attributes)


def event(name: str, **attributes: Any) -> Optional[Span]:
    """A zero-duration span under the current span (dropped when disabled)."""
    return _trace._current_tracer.event(name, **attributes)


# -- solver instrumentation ----------------------------------------------------
def record_solve(solver_name: str, result) -> None:
    """Feed one :class:`~repro.solvers.base.SolverResult` into the registry."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    stats = result.stats
    registry.counter(
        "repro_solver_runs_total",
        "Completed solver runs by solver and verdict.",
        solver=solver_name,
        status=result.status,
    ).inc()
    for counter_name, amount in (
        ("repro_solver_decisions_total", stats.decisions),
        ("repro_solver_propagations_total", stats.propagations),
        ("repro_solver_conflicts_total", stats.conflicts),
        ("repro_solver_learned_clauses_total", stats.learned_clauses),
        ("repro_solver_restarts_total", stats.restarts),
        ("repro_solver_flips_total", stats.flips),
        ("repro_solver_evaluations_total", stats.evaluations),
    ):
        if amount:
            registry.counter(
                counter_name,
                "Accumulated solver work counters.",
                solver=solver_name,
            ).inc(amount)
    if result.timed_out:
        registry.counter(
            "repro_solver_timeouts_total",
            "Runs that ended by exhausting their wall-clock budget.",
            solver=solver_name,
        ).inc()
    registry.histogram(
        "repro_solver_wall_seconds",
        "Per-run wall-clock time by solver.",
        solver=solver_name,
    ).observe(stats.elapsed_seconds)


def record_learned_db_size(solver_name: str, size: int) -> None:
    """Gauge the clause-database size (original + learned) of a solver."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().gauge(
        "repro_learned_db_clauses",
        "Current clause-database size (problem + learned clauses).",
        solver=solver_name,
    ).set(size)


def record_cdcl_propagations(count: int) -> None:
    """Count propagations performed by the CDCL arena kernel."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_cdcl_propagations_total",
        "Literal propagations performed by the CDCL arena kernel.",
    ).inc(count)


def record_cdcl_watch_lists(average_length: float, max_length: int) -> None:
    """Gauge the watch-list lengths of the CDCL arena kernel."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.gauge(
        "repro_cdcl_watch_list_length_avg",
        "Average two-watched-literal watch-list length per literal.",
    ).set(round(average_length, 3))
    registry.gauge(
        "repro_cdcl_watch_list_length_max",
        "Longest two-watched-literal watch list over all literals.",
    ).set(max_length)


def record_cdcl_reduction(deleted: int) -> None:
    """Count one learned-clause DB reduction and the clauses it deleted."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_cdcl_reductions_total",
        "Learned-clause database reductions run by the CDCL kernel.",
    ).inc()
    registry.counter(
        "repro_cdcl_clauses_deleted_total",
        "Learned clauses deleted by DB reduction and inprocessing.",
        source="reduction",
    ).inc(deleted)


def record_cdcl_inprocess(dropped: int, strengthened: int) -> None:
    """Count one restart-boundary inprocessing pass and its effects."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_cdcl_inprocessings_total",
        "Restart-boundary inprocessing passes run by the CDCL kernel.",
    ).inc()
    registry.counter(
        "repro_cdcl_clauses_deleted_total",
        "Learned clauses deleted by DB reduction and inprocessing.",
        source="inprocess",
    ).inc(dropped)
    registry.counter(
        "repro_cdcl_clauses_strengthened_total",
        "Learned clauses shortened by inprocessing vivification.",
    ).inc(strengthened)


# -- cache instrumentation -----------------------------------------------------
def record_cache_lookup(hit: bool) -> None:
    """Count one result-cache probe."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    if hit:
        registry.counter(
            "repro_cache_hits_total", "Result-cache lookups answered from cache."
        ).inc()
    else:
        registry.counter(
            "repro_cache_misses_total", "Result-cache lookups that missed."
        ).inc()


def record_cache_eviction(count: int = 1) -> None:
    """Count result-cache LRU evictions."""
    if not _metrics.metrics_active() or not count:
        return
    _metrics.get_metrics().counter(
        "repro_cache_evictions_total", "Entries evicted by the LRU policy."
    ).inc(count)


def record_cache_snapshot(stats) -> None:
    """Gauge a :class:`~repro.runtime.cache.CacheStats` snapshot."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.gauge(
        "repro_cache_size", "Entries currently held by the result cache."
    ).set(stats.size)
    registry.gauge(
        "repro_cache_max_size", "Configured result-cache capacity."
    ).set(stats.max_size)
    registry.gauge(
        "repro_cache_hit_ratio",
        "Lifetime hits / lookups of the result cache (0 when unused).",
    ).set(stats.hit_rate)


# -- preprocessing instrumentation ---------------------------------------------
def record_preprocess(stats, status: str) -> None:
    """Feed one :class:`~repro.preprocess.PreprocessStats` into the registry."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_preprocess_runs_total",
        "Completed preprocessing runs by final status.",
        status=status,
    ).inc()
    registry.counter(
        "repro_preprocess_clauses_removed_total",
        "Clauses removed by the inprocessing pipeline.",
    ).inc(max(0, stats.original_clauses - stats.reduced_clauses))
    registry.gauge(
        "repro_preprocess_clause_reduction_ratio",
        "Clause-reduction fraction of the most recent preprocessing run.",
    ).set(stats.clause_reduction)
    registry.histogram(
        "repro_preprocess_wall_seconds",
        "Per-run wall-clock time of the inprocessing pipeline.",
    ).observe(stats.elapsed_seconds)


# -- runtime instrumentation ---------------------------------------------------
def record_pool_task(status: str, seconds: float) -> None:
    """Count one executed pool job and its wall time."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_pool_tasks_total",
        "Jobs executed by the worker pool, by outcome status.",
        status=status,
    ).inc()
    registry.histogram(
        "repro_pool_task_seconds", "Per-job wall-clock time in the pool."
    ).observe(seconds)


def record_pool_queue_depth(depth: int) -> None:
    """Gauge the number of jobs waiting on pool results."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().gauge(
        "repro_pool_queue_depth", "Jobs submitted to the pool and not yet finished."
    ).set(depth)


def record_batch_outcome(status: str, from_cache: bool) -> None:
    """Count one batch outcome (cache hits included)."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_batch_outcomes_total",
        "Batch outcomes by status and cache provenance.",
        status=status,
        from_cache=str(bool(from_cache)).lower(),
    ).inc()


# -- service instrumentation ---------------------------------------------------
def record_service_request(op: str, code: int, seconds: float) -> None:
    """Count one service request by operation and response code."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_service_requests_total",
        "Service requests by operation and response code.",
        op=op,
        code=str(code),
    ).inc()
    registry.histogram(
        "repro_service_request_seconds",
        "Wall-clock time from request receipt to response, by operation.",
        op=op,
    ).observe(seconds)


def record_service_dedup() -> None:
    """Count one request answered by sharing an in-flight identical solve."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_service_dedup_hits_total",
        "Requests that joined an identical in-flight solve.",
    ).inc()


def record_service_rejection() -> None:
    """Count one request rejected by admission control (a 429 response)."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_service_rejections_total",
        "Requests rejected because the admission queue was full.",
    ).inc()


def record_service_degraded(degraded: bool) -> None:
    """Gauge (and count) the service's persist-degradation state.

    The gauge flips to 1 while the last cache-persist attempt failed
    (verdicts are served without durability) and back to 0 once a
    persist succeeds again; each entry into the degraded state also
    counts one persist failure.
    """
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.gauge(
        "repro_service_degraded",
        "1 while the service is serving without persistence, else 0.",
    ).set(1 if degraded else 0)
    if degraded:
        registry.counter(
            "repro_service_persist_failures_total",
            "Cache-persist failures absorbed by degrading to serve-only.",
        ).inc()


def record_service_retry(reason: str) -> None:
    """Count one client-side retry (rejected = 429 backoff, transport = reconnect)."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_service_retries_total",
        "Client request retries by reason.",
        reason=reason,
    ).inc()


def record_service_reconnect() -> None:
    """Count one client TCP reconnect (with pending-request re-submission)."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_service_reconnects_total",
        "Client TCP reconnects after a transport failure.",
    ).inc()


def record_service_load(queue_depth: int, inflight: int) -> None:
    """Gauge the service's admission queue depth and in-flight solve count."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.gauge(
        "repro_service_queue_depth",
        "Requests waiting for an executor slot.",
    ).set(queue_depth)
    registry.gauge(
        "repro_service_inflight",
        "Distinct solves currently running in the executor.",
    ).set(inflight)


# -- sharded-cache instrumentation ---------------------------------------------
def record_wal_append(shard: int) -> None:
    """Count one record appended to a shard's write-ahead log."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_cache_wal_records_total",
        "Records appended to shard write-ahead logs.",
        shard=str(shard),
    ).inc()


def record_wal_recovery(replayed: int, torn: int) -> None:
    """Count WAL records replayed (and torn records dropped) at load."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    if replayed:
        registry.counter(
            "repro_cache_wal_replayed_total",
            "WAL records replayed into memory at cache load.",
        ).inc(replayed)
    if torn:
        registry.counter(
            "repro_cache_wal_torn_total",
            "Torn (crash-truncated) WAL records dropped at cache load.",
        ).inc(torn)


def record_compaction(shard: int, entries: int) -> None:
    """Count one shard compaction and gauge the shard's entry count."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_cache_compactions_total",
        "Shard snapshot-and-truncate compactions.",
        shard=str(shard),
    ).inc()
    registry.gauge(
        "repro_cache_shard_entries",
        "Entries held per cache shard (updated at compaction and on demand).",
        shard=str(shard),
    ).set(entries)


def record_shard_sizes(sizes) -> None:
    """Gauge the per-shard entry counts of a sharded cache."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    for shard, size in enumerate(sizes):
        registry.gauge(
            "repro_cache_shard_entries",
            "Entries held per cache shard (updated at compaction and on demand).",
            shard=str(shard),
        ).set(size)


def record_lock_wait(shard: int, seconds: float) -> None:
    """Observe how long one shard-lease acquisition waited."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().histogram(
        "repro_cache_lock_wait_seconds",
        "Wall-clock wait to acquire a shard's cross-process lease.",
    ).observe(seconds)


def record_lock_takeover(shard: int) -> None:
    """Count one stale-lease takeover (a crashed holder's lock reclaimed)."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_cache_lock_takeovers_total",
        "Stale shard leases taken over after their holder died.",
        shard=str(shard),
    ).inc()


# -- fault-injection instrumentation -------------------------------------------
def record_fault_injected(point: str, kind: str) -> None:
    """Count one injected fault by fault point and kind."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_faults_injected_total",
        "Faults injected by the active fault plan.",
        point=point,
        kind=kind,
    ).inc()


# -- proof instrumentation -----------------------------------------------------
def record_proof_log(additions: int, deletions: int, incomplete: bool) -> None:
    """Count the lines of one finished DRAT proof log."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_proof_lines_total",
        "DRAT proof lines emitted, by line kind.",
        kind="add",
    ).inc(additions)
    registry.counter(
        "repro_proof_lines_total",
        "DRAT proof lines emitted, by line kind.",
        kind="delete",
    ).inc(deletions)
    registry.counter(
        "repro_proof_logs_total",
        "Finished proof logs by completeness.",
        incomplete=str(bool(incomplete)).lower(),
    ).inc()


def record_proof_check(status: str, seconds: float, steps: int) -> None:
    """Count one proof-checker run and its wall time."""
    if not _metrics.metrics_active():
        return
    registry = _metrics.get_metrics()
    registry.counter(
        "repro_proof_checks_total",
        "Proof-checker runs by verdict.",
        status=status,
    ).inc()
    registry.counter(
        "repro_proof_check_steps_total",
        "Proof steps replayed by the checker.",
    ).inc(steps)
    registry.histogram(
        "repro_proof_check_seconds",
        "Per-run wall-clock time of the proof checker.",
    ).observe(seconds)


# -- incremental-session instrumentation ---------------------------------------
def record_session_query(solver_name: str, status: str) -> None:
    """Count one incremental-session query."""
    if not _metrics.metrics_active():
        return
    _metrics.get_metrics().counter(
        "repro_session_queries_total",
        "Incremental-session queries by session solver and verdict.",
        solver=solver_name,
        status=status,
    ).inc()
