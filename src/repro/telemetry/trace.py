"""Structured tracing: nested spans with monotonic timings.

A :class:`Span` is one timed operation (a solve, a preprocessing run, a
cache lookup); spans nest, so a trace of a batch run is a forest of trees
whose leaves are the innermost operations. A :class:`Tracer` records
completed *root* spans into a bounded ring buffer and, optionally, appends
each one to a JSONL sink (one JSON object per line, children inlined) so
traces survive the process.

Design rules, in order of importance:

* **Zero cost when disabled.** The module-level current tracer defaults to
  :data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
  no-op span object — no allocation, no timestamps, no dictionary is built
  on the hot path. Instrumentation sites additionally guard attribute
  construction behind :attr:`Span.recording` / :func:`tracing_active` so a
  disabled tracer costs a bool check and nothing else.
* **Bounded memory.** Completed root spans live in a ring buffer
  (``capacity`` roots); each span keeps at most
  :attr:`Span.max_children` children and counts the overflow in
  :attr:`Span.truncated_children` instead of growing without bound.
* **Monotonic timings.** Spans are stamped with ``time.perf_counter()``,
  so durations are immune to wall-clock adjustments (absolute wall-clock
  anchoring, when needed, belongs in an attribute).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.exceptions import ReproError

PathLike = Union[str, os.PathLike]

#: The span names emitted by the library's own instrumentation (see
#: ``docs/observability.md`` for the full taxonomy with attributes):
#: ``solve`` (one solver run), ``session.solve`` (one incremental query),
#: ``preprocess`` (one pipeline run), ``propagate`` (one unit-propagation
#: sweep inside CDCL), ``restart`` (a solver restart event),
#: ``cache.lookup`` (one result-cache probe), ``pool.task`` (one job
#: executed by the worker pool), ``proof.check`` (one RUP/DRAT checker
#: run), and ``cli.<command>`` (one CLI invocation, the usual root).
SPAN_TAXONOMY = (
    "solve",
    "session.solve",
    "preprocess",
    "propagate",
    "restart",
    "cache.lookup",
    "cache.shard.load",
    "cache.shard.compact",
    "pool.task",
    "proof.check",
    "service.request",
    "service.dedup",
    "cli.solve",
    "cli.check",
    "cli.batch",
    "cli.incremental",
    "cli.check-proof",
    "cli.serve",
    "cli.client",
)


class Span:
    """One timed, attributed operation inside a trace tree.

    Use as a context manager obtained from :meth:`Tracer.span`; entering
    stamps the start, exiting stamps the end and files the span under its
    parent (or into the tracer's ring buffer when it is a root).

    Attributes are plain JSON-serialisable values set via :meth:`set`;
    instrumentation sites check :attr:`recording` before building them so
    the disabled path never allocates.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start_seconds",
        "end_seconds",
        "truncated_children",
        "_tracer",
    )

    #: ``True`` on real spans; the null span overrides this with ``False``.
    recording = True
    #: Per-span cap on retained children; the overflow is counted in
    #: :attr:`truncated_children` so heavy inner loops cannot exhaust memory.
    max_children = 4096

    def __init__(
        self,
        name: str,
        tracer: Optional["Tracer"] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = str(name)
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.start_seconds: Optional[float] = None
        self.end_seconds: Optional[float] = None
        self.truncated_children = 0
        self._tracer = tracer

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "Span":
        self.start_seconds = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_seconds = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (chainable); values must be JSON-serialisable."""
        self.attributes.update(attributes)
        return self

    def add_child(self, child: "Span") -> None:
        """File a completed child span (bounded by :attr:`max_children`)."""
        if len(self.children) >= self.max_children:
            self.truncated_children += 1
            return
        self.children.append(child)

    # -- introspection -------------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        """Span duration (0.0 while unfinished or for zero-duration events)."""
        if self.start_seconds is None or self.end_seconds is None:
            return 0.0
        return self.end_seconds - self.start_seconds

    def walk(self) -> Iterator["Span"]:
        """Depth-first iterator over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- (de)serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable encoding (children inlined, depth-first)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "start": self.start_seconds,
            "end": self.end_seconds,
            "duration": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.truncated_children:
            payload["truncated_children"] = self.truncated_children
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (used by :func:`load_trace`)."""
        span = cls(data["name"], attributes=data.get("attributes"))
        span.start_seconds = data.get("start")
        span.end_seconds = data.get("end")
        span.truncated_children = data.get("truncated_children", 0)
        for child in data.get("children", ()):
            span.children.append(cls.from_dict(child))
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration_seconds:.6f}s, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()
    recording = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpan()"


#: The singleton no-op span. Identity-stable: every ``span()`` call on a
#: disabled tracer returns this very object, allocating nothing.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    :attr:`enabled` is ``False`` so instrumentation sites can skip building
    span attributes entirely; :meth:`span` returns the shared
    :data:`NULL_SPAN` singleton (no allocation per call).
    """

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """A no-op span (the shared singleton)."""
        return NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        """Dropped."""
        return None

    @property
    def finished(self) -> tuple:
        """Always empty."""
        return ()

    def clear(self) -> None:
        """Nothing to clear."""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""


#: The singleton disabled tracer installed by default.
NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans into a ring buffer and an optional JSONL sink.

    Parameters
    ----------
    capacity:
        How many completed *root* spans the in-memory ring buffer retains
        (oldest evicted first). Children live inside their root.
    sink:
        Optional JSONL destination: a path (opened lazily in append mode
        and owned by the tracer) or any object with a ``write`` method
        (not owned — the caller closes it). Each completed root span is
        written as one JSON line.

    The span stack is thread-local, so concurrently traced threads build
    independent trees; the ring buffer and sink are shared (writes are
    locked).
    """

    enabled = True

    def __init__(self, capacity: int = 1024, sink=None) -> None:
        if capacity <= 0:
            raise ReproError(f"tracer capacity must be positive, got {capacity}")
        self._finished: "deque[Span]" = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sink_path: Optional[str] = None
        self._sink_handle = None
        self._owns_sink = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink_handle = sink
            else:
                self._sink_path = os.fspath(sink)
                self._owns_sink = True

    # -- recording -----------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; enter it (``with``) to start the clock."""
        return Span(name, tracer=self, attributes=attributes or None)

    def event(self, name: str, **attributes: Any) -> Span:
        """A zero-duration span stamped now, filed under the current span."""
        span = Span(name, attributes=attributes or None)
        span.start_seconds = span.end_seconds = time.perf_counter()
        parent = self._current()
        if parent is not None:
            parent.add_child(span)
        else:
            self._complete_root(span)
        return span

    # -- span-stack plumbing (called by Span.__enter__/__exit__) -------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exception-driven unwinding that skipped an __exit__.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].add_child(span)
        else:
            self._complete_root(span)

    def _complete_root(self, span: Span) -> None:
        self._finished.append(span)
        self._write(span)

    # -- sink ----------------------------------------------------------------
    def _write(self, span: Span) -> None:
        if self._sink_handle is None and self._sink_path is None:
            return
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._sink_handle is None:
                self._sink_handle = open(self._sink_path, "a", encoding="utf-8")
            self._sink_handle.write(line + "\n")
            self._sink_handle.flush()

    # -- introspection / lifecycle -------------------------------------------
    @property
    def finished(self) -> tuple:
        """Completed root spans, oldest first (bounded by ``capacity``)."""
        return tuple(self._finished)

    def clear(self) -> None:
        """Drop the buffered root spans (the sink keeps what it has)."""
        self._finished.clear()

    def flush(self) -> None:
        """Flush the sink, if any."""
        with self._lock:
            if self._sink_handle is not None:
                self._sink_handle.flush()

    def close(self) -> None:
        """Close a tracer-owned sink file (no-op otherwise)."""
        with self._lock:
            if self._owns_sink and self._sink_handle is not None:
                self._sink_handle.close()
                self._sink_handle = None

    def __repr__(self) -> str:
        return f"Tracer(finished={len(self._finished)}, sink={self._sink_path!r})"


#: The process-wide current tracer. Module-level by design: hot paths read
#: it with one attribute lookup and no indirection.
_current_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The currently installed tracer (:data:`NULL_TRACER` when disabled)."""
    return _current_tracer


def set_tracer(tracer: Union[Tracer, NullTracer]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` as the current tracer; returns the previous one."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer
    return previous


def tracing_active() -> bool:
    """``True`` when a real (recording) tracer is installed."""
    return _current_tracer.enabled


def start_tracing(capacity: int = 1024, sink=None) -> Tracer:
    """Install (and return) a fresh recording :class:`Tracer`.

    ``sink`` is forwarded to :class:`Tracer`; a previously installed
    recording tracer is replaced but *not* closed (callers that own one
    pair :func:`start_tracing` with :func:`stop_tracing`).
    """
    tracer = Tracer(capacity=capacity, sink=sink)
    set_tracer(tracer)
    return tracer


def stop_tracing() -> Union[Tracer, NullTracer]:
    """Disable tracing; flushes + closes the outgoing tracer's sink.

    Returns the tracer that was active, so its in-memory buffer remains
    inspectable after the fact.
    """
    previous = set_tracer(NULL_TRACER)
    previous.flush()
    previous.close()
    return previous


def load_trace(path: PathLike) -> List[Span]:
    """Read a JSONL trace written by a :class:`Tracer` sink.

    Returns the root spans (children nested inside). Raises
    :class:`~repro.exceptions.ReproError` for unreadable or structurally
    invalid files.
    """
    roots: List[Span] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if not isinstance(data, dict) or "name" not in data:
                    raise ValueError(f"line {line_number} is not a span object")
                roots.append(Span.from_dict(data))
    except ReproError:
        raise
    except Exception as exc:  # noqa: BLE001 — persistence boundary
        raise ReproError(f"cannot load trace file {os.fspath(path)!r}: {exc}") from exc
    return roots
