"""Persistent performance trajectory: schema-versioned ``BENCH_*.json``.

The ROADMAP gates hot-path work on a recorded decisions/propagations-per-
second trajectory; this module is that record. A ``BENCH_<name>.json``
file holds ``{"schema": N, "entries": [...]}`` where each entry is one
:class:`BenchRecord` — a timestamped, schema-versioned measurement of a
fixed workload. ``benchmarks/record_trajectory.py`` appends the CDCL
kernel trajectory to ``BENCH_cdcl.json``; ``bench_batch.py`` and
``bench_incremental.py`` emit their results through the same schema.

Entries are append-only: a trajectory is only meaningful when old points
survive, so :func:`append_bench_record` never rewrites history, and the
file write is atomic (temp file + rename).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from repro.exceptions import ReproError

PathLike = Union[str, os.PathLike]

#: Version of the per-entry schema. Bump when entry fields change meaning;
#: readers must tolerate entries of older versions sitting in the same file.
BENCH_SCHEMA_VERSION = 1


def _utc_timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class BenchRecord:
    """One point on a performance trajectory.

    Attributes
    ----------
    benchmark:
        Which trajectory the point belongs to (``"cdcl-kernel"``,
        ``"batch-throughput"``, ``"incremental-k-sweep"``, ...).
    metrics:
        The measured numbers, flat ``name -> float`` (rates in ``*_per_sec``,
        times in ``*_seconds``, plain counts otherwise).
    workload:
        Enough description of the measured workload to judge comparability
        across entries (instance counts, sizes, seeds, parameters).
    meta:
        Environment context (python version, platform, telemetry state).
    schema:
        Entry schema version (:data:`BENCH_SCHEMA_VERSION` when written by
        this code).
    timestamp:
        ISO-8601 UTC creation time; stamped by :func:`append_bench_record`
        when left empty.
    """

    benchmark: str
    metrics: Dict[str, float] = field(default_factory=dict)
    workload: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA_VERSION
    timestamp: str = ""

    def __post_init__(self) -> None:
        if not self.benchmark:
            raise ReproError("BenchRecord.benchmark must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable encoding of the entry."""
        return {
            "schema": self.schema,
            "benchmark": self.benchmark,
            "timestamp": self.timestamp,
            "metrics": dict(self.metrics),
            "workload": dict(self.workload),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        """Inverse of :meth:`to_dict`; tolerates missing optional fields."""
        return cls(
            benchmark=data["benchmark"],
            metrics=dict(data.get("metrics", {})),
            workload=dict(data.get("workload", {})),
            meta=dict(data.get("meta", {})),
            schema=int(data.get("schema", 0)),
            timestamp=data.get("timestamp", ""),
        )

    def to_text(self) -> str:
        """One-line human summary (benchmark, timestamp, headline metrics)."""
        numbers = ", ".join(
            f"{name}={value:g}" for name, value in sorted(self.metrics.items())
        )
        return f"{self.benchmark} @ {self.timestamp or 'unstamped'}: {numbers}"


def load_bench_records(path: PathLike) -> List[BenchRecord]:
    """Read every entry of a ``BENCH_*.json`` file (oldest first).

    Raises :class:`~repro.exceptions.ReproError` for unreadable or
    structurally invalid files; a missing file is the caller's check.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entries = payload["entries"]
        return [BenchRecord.from_dict(entry) for entry in entries]
    except ReproError:
        raise
    except Exception as exc:  # noqa: BLE001 — persistence boundary
        raise ReproError(
            f"cannot load bench file {os.fspath(path)!r}: {exc}"
        ) from exc


def append_bench_record(path: PathLike, record: BenchRecord) -> int:
    """Append ``record`` to the trajectory at ``path``; returns entry count.

    Creates the file when missing; otherwise existing entries are kept
    verbatim (append-only). An empty ``record.timestamp`` is stamped with
    the current UTC time. The write is atomic (temp file + rename).
    """
    records = load_bench_records(path) if os.path.exists(path) else []
    if not record.timestamp:
        record.timestamp = _utc_timestamp()
    records.append(record)
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "entries": [entry.to_dict() for entry in records],
    }
    temp_path = f"{os.fspath(path)}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return len(records)
