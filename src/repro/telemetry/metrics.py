"""Process-wide metrics: counters, gauges and histograms with exporters.

A :class:`MetricsRegistry` is a concurrent-safe collection of named metric
families; each family holds one instrument per label set (so
``repro_solver_decisions_total{solver="cdcl"}`` and ``...{solver="dpll"}``
are independent counters of one family). The registry exports to the
Prometheus text exposition format (:meth:`MetricsRegistry.to_prometheus`)
and to JSON (:meth:`MetricsRegistry.to_json`).

Collection is off by default: the library's instrumentation helpers
(:mod:`repro.telemetry.instrument`) consult :func:`metrics_active` before
touching the process-wide registry, so an un-enabled process pays one bool
check per instrumentation site and allocates nothing.

The metric names emitted by the library itself are listed in
``docs/observability.md``; they follow the Prometheus conventions
(``_total`` suffix on counters, base units — seconds, ratios in [0, 1]).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError

#: Default histogram buckets for wall-clock durations, in seconds.
DEFAULT_TIME_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelPairs = Tuple[Tuple[str, str], ...]


def _canonical_labels(labels: Dict[str, Any]) -> LabelPairs:
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ReproError(f"invalid metric label name {key!r}")
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelPairs, extra: LabelPairs = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing value (events, work units).

    Obtained from :meth:`MetricsRegistry.counter`; never instantiate one
    outside a registry if you want it exported.
    """

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}{dict(self.labels)}, value={self._value})"


class Gauge:
    """A value that can go up and down (sizes, depths, ratios)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}{dict(self.labels)}, value={self._value})"


class Histogram:
    """Cumulative-bucket histogram of observations (Prometheus semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    always exists, and the exported ``_bucket`` samples are cumulative.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ReproError(f"histogram {name} has duplicate buckets")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative count per upper bound (``inf`` = total)."""
        cumulative: Dict[float, int] = {}
        running = 0
        with self._lock:
            for bound, count in zip(self.buckets, self._counts):
                running += count
                cumulative[bound] = running
            cumulative[math.inf] = running + self._counts[-1]
        return cumulative

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}{dict(self.labels)}, "
            f"count={self._count}, sum={self._sum})"
        )


class _Family:
    __slots__ = ("name", "kind", "help_text", "buckets")

    def __init__(self, name, kind, help_text, buckets=None):
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.buckets = buckets


class MetricsRegistry:
    """A named collection of metric families, one instrument per label set.

    Instruments are get-or-create: asking twice for the same
    ``(name, labels)`` returns the same object, so call sites never hold
    references across configuration changes. Re-registering a name with a
    different kind raises :class:`~repro.exceptions.ReproError` — a family
    is one type forever, mirroring the Prometheus data model.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._metrics: Dict[Tuple[str, LabelPairs], Any] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------
    def _family(
        self, name: str, kind: str, help_text: str, buckets=None
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ReproError(
                f"metric {name!r} is a {family.kind}, cannot re-register as {kind}"
            )
        elif help_text and not family.help_text:
            family.help_text = help_text
        return family

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        """Get or create the :class:`Counter` ``name`` with ``labels``."""
        key = (name, _canonical_labels(labels))
        with self._lock:
            self._family(name, "counter", help_text)
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = Counter(name, key[1])
            return metric

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        """Get or create the :class:`Gauge` ``name`` with ``labels``."""
        key = (name, _canonical_labels(labels))
        with self._lock:
            self._family(name, "gauge", help_text)
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = Gauge(name, key[1])
            return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """Get or create the :class:`Histogram` ``name`` with ``labels``.

        ``buckets`` applies on first registration of the family; later
        calls reuse the family's buckets so all label sets stay comparable.
        """
        key = (name, _canonical_labels(labels))
        with self._lock:
            family = self._family(
                name,
                "histogram",
                help_text,
                tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS,
            )
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = Histogram(
                    name, key[1], buckets=family.buckets
                )
            return metric

    # -- introspection -------------------------------------------------------
    def get(self, name: str, **labels: Any):
        """The instrument registered for ``(name, labels)`` or ``None``."""
        key = (name, _canonical_labels(labels))
        with self._lock:
            return self._metrics.get(key)

    def collect(self) -> List[Any]:
        """Every registered instrument, grouped by family, label-sorted."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def reset(self) -> None:
        """Drop every family and instrument (a fresh registry)."""
        with self._lock:
            self._families.clear()
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    # -- exporters -----------------------------------------------------------
    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        by_family: Dict[str, List[Any]] = {}
        for metric in self.collect():
            by_family.setdefault(metric.name, []).append(metric)
        for name in sorted(by_family):
            family = self._families[name]
            if family.help_text:
                lines.append(f"# HELP {name} {family.help_text}")
            lines.append(f"# TYPE {name} {family.kind}")
            for metric in by_family[name]:
                if family.kind == "histogram":
                    for bound, count in metric.bucket_counts().items():
                        extra = (("le", _format_value(bound)),)
                        lines.append(
                            f"{name}_bucket"
                            f"{_format_labels(metric.labels, extra)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(metric.labels)} "
                        f"{_format_value(metric.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(metric.labels)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(metric.labels)} "
                        f"{_format_value(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot: family metadata plus every sample."""
        families: Dict[str, Any] = {}
        for metric in self.collect():
            family = self._families[metric.name]
            entry = families.setdefault(
                metric.name,
                {"type": family.kind, "help": family.help_text, "samples": []},
            )
            sample: Dict[str, Any] = {"labels": dict(metric.labels)}
            if family.kind == "histogram":
                sample["count"] = metric.count
                sample["sum"] = metric.sum
                sample["buckets"] = {
                    ("+Inf" if bound == math.inf else repr(bound)): count
                    for bound, count in metric.bucket_counts().items()
                }
            else:
                sample["value"] = metric.value
            entry["samples"].append(sample)
        return families

    def __repr__(self) -> str:
        return f"MetricsRegistry(families={len(self._families)}, metrics={len(self._metrics)})"


#: The process-wide registry the library's instrumentation feeds.
_registry = MetricsRegistry()
#: Collection switch; read by :func:`metrics_active` on every hot path.
_enabled = False


def get_metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _registry


def metrics_active() -> bool:
    """``True`` when metrics collection is enabled for this process."""
    return _enabled


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn on metrics collection (optionally swapping in ``registry``)."""
    global _registry, _enabled
    if registry is not None:
        _registry = registry
    _enabled = True
    return _registry


def disable_metrics() -> None:
    """Turn collection back off (the registry and its values survive)."""
    global _enabled
    _enabled = False


def write_metrics(path, registry: Optional[MetricsRegistry] = None) -> str:
    """Write the registry to ``path``; returns the chosen format.

    Paths ending in ``.json`` get the :meth:`MetricsRegistry.to_json`
    snapshot; anything else gets the Prometheus text format.
    """
    registry = registry if registry is not None else _registry
    import os

    text_path = os.fspath(path)
    if text_path.endswith(".json"):
        payload = json.dumps(registry.to_json(), indent=2, sort_keys=True)
        fmt = "json"
    else:
        payload = registry.to_prometheus()
        fmt = "prometheus"
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return fmt
