"""RTW-based NBL-SAT engine.

This is a thin specialisation of the sampled engine with telegraph-wave
carriers: the construction of Σ_N and τ_N is untouched, only the carrier
statistics change. Two carrier flavours are supported:

* ``switch_probability = 0.5`` (default) — the sign is redrawn i.i.d. every
  sample (equivalent to :class:`repro.noise.telegraph.BipolarCarrier`);
* ``switch_probability < 0.5`` — the sign persists between switching events,
  modelling a physical RTW sampled faster than its switching rate. The
  resulting temporal correlation slows convergence, which the ablation
  experiment measures.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.result import CheckResult
from repro.core.sampled import SampledNBLEngine
from repro.core.sigma import sigma_samples
from repro.exceptions import EngineError
from repro.hyperspace.reference import reference_hyperspace
from repro.noise.bank import NoiseBank
from repro.noise.telegraph import BipolarCarrier, TelegraphCarrier
from repro.utils.rng import SeedLike


class RTWNBLEngine:
    """NBL-SAT engine with Random-Telegraph-Wave carriers.

    Exposes the same ``check(bindings)`` interface as the other engines.
    """

    name = "rtw"

    def __init__(
        self,
        formula: CNFFormula,
        amplitude: float = 1.0,
        switch_probability: float = 0.5,
        max_samples: int = 100_000,
        block_size: int = 10_000,
        decision_fraction: float = 0.5,
        seed: SeedLike = 0,
    ) -> None:
        if not 0.0 < switch_probability <= 1.0:
            raise EngineError("switch_probability must lie in (0, 1]")
        if switch_probability == 0.5:
            carrier = BipolarCarrier(amplitude=amplitude)
        else:
            carrier = TelegraphCarrier(
                amplitude=amplitude, switch_probability=switch_probability
            )
        config = NBLConfig(
            carrier=carrier,
            max_samples=max_samples,
            block_size=block_size,
            decision_fraction=decision_fraction,
            convergence="adaptive",
            seed=seed,
        )
        self._inner = SampledNBLEngine(formula, config)
        self.formula = formula
        self.switch_probability = switch_probability

    @property
    def minterm_signal(self) -> float:
        """One-satisfying-minterm signal level ``amplitude²ⁿᵐ``."""
        return self._inner.minterm_signal

    @property
    def decision_threshold(self) -> float:
        """The SAT/UNSAT threshold applied to the observed mean."""
        return self._inner.decision_threshold

    def check(self, bindings: Optional[Mapping[int, bool]] = None) -> CheckResult:
        """Algorithm 1 with RTW carriers."""
        result = self._inner.check(bindings)
        result.engine = self.name
        return result

    def __repr__(self) -> str:
        return (
            f"RTWNBLEngine(n={self.formula.num_variables}, "
            f"m={self.formula.num_clauses}, p_switch={self.switch_probability})"
        )


def instantaneous_margin(
    formula: CNFFormula,
    num_observations: int = 64,
    block_size: int = 2_000,
    seed: SeedLike = 0,
) -> float:
    """Diagnostic inspired by "instantaneous" noise-based logic (paper ref. [17]).

    Repeatedly evaluates short RTW observation windows of ``S_N`` and returns
    the fraction of windows whose mean exceeds half the one-minterm level.
    For satisfiable instances this fraction approaches 1 with even modest
    window lengths (because the matched products are exactly +1 at every
    sample); for unsatisfiable instances it stays near the false-positive
    rate of the window length. Used by the carrier ablation as a cheap
    separability summary.
    """
    if num_observations <= 0 or block_size <= 0:
        raise EngineError("num_observations and block_size must be positive")
    carrier = BipolarCarrier()
    threshold = 0.5  # one-minterm level is exactly 1 for bipolar carriers
    hits = 0
    for index in range(num_observations):
        bank = NoiseBank(
            num_clauses=formula.num_clauses,
            num_variables=formula.num_variables,
            carrier=carrier,
            seed=None if seed is None else (hash((seed, index)) & 0x7FFFFFFF),
        )
        block = bank.sample_block(block_size)
        tau = reference_hyperspace(block, None)
        sigma = sigma_samples(block, formula)
        if float(np.mean(tau * sigma)) > threshold:
            hits += 1
    return hits / num_observations
