"""Random-Telegraph-Wave realization of NBL-SAT (paper Section V, ref. [17]).

RTW carriers take only the values ±A, so the square of every carrier is
exactly ``A²``: the self-correlation of a satisfying minterm carries **no
sampling noise** and all fluctuation comes from the cross terms. This makes
the RTW engine the highest-SNR realization in the library, which the
carrier-ablation experiment quantifies.
"""

from repro.rtw.engine import RTWNBLEngine, instantaneous_margin

__all__ = ["RTWNBLEngine", "instantaneous_margin"]
