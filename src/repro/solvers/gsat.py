"""GSAT: greedy local search (incomplete) baseline."""

from __future__ import annotations

from typing import Dict

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError
from repro.solvers.base import SAT, UNKNOWN, SATSolver, SolverResult, SolverStats
from repro.telemetry import instrument as _telemetry
from repro.utils.rng import SeedLike, as_generator


class GSATSolver(SATSolver):
    """GSAT: repeatedly flip the variable that maximally increases the number
    of satisfied clauses, with occasional random walk moves to escape plateaus.

    Incomplete: returns ``SAT`` or ``UNKNOWN``.
    """

    name = "gsat"
    complete = False

    def __init__(
        self,
        max_flips: int = 2_000,
        max_tries: int = 5,
        walk_probability: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        if max_flips <= 0 or max_tries <= 0:
            raise SolverError("max_flips and max_tries must be positive")
        if not 0.0 <= walk_probability <= 1.0:
            raise SolverError(
                f"walk_probability must lie in [0, 1], got {walk_probability}"
            )
        self._max_flips = max_flips
        self._max_tries = max_tries
        self._walk_probability = walk_probability
        self._rng = as_generator(seed)

    def _num_satisfied(self, formula: CNFFormula, assignment: Dict[int, bool]) -> int:
        return sum(1 for clause in formula if clause.evaluate(assignment))

    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        if formula.has_empty_clause():
            return SolverResult(UNKNOWN, None, stats)
        num_vars = formula.num_variables
        if num_vars == 0:
            return SolverResult(SAT, Assignment(), stats)
        total_clauses = formula.num_clauses

        for _ in range(self._max_tries):
            stats.restarts += 1
            if _telemetry.tracing_active():
                _telemetry.event(
                    "restart", attempt=stats.restarts, flips=stats.flips
                )
            assignment: Dict[int, bool] = {
                v: bool(self._rng.integers(0, 2)) for v in range(1, num_vars + 1)
            }
            for _ in range(self._max_flips):
                self._check_timeout(stats)
                satisfied = self._num_satisfied(formula, assignment)
                stats.evaluations += 1
                if satisfied == total_clauses:
                    return SolverResult(SAT, Assignment(assignment), stats)
                if self._rng.random() < self._walk_probability:
                    variable = int(self._rng.integers(1, num_vars + 1))
                else:
                    variable = self._best_flip(formula, assignment, num_vars)
                assignment[variable] = not assignment[variable]
                stats.flips += 1
        return SolverResult(UNKNOWN, None, stats)

    def _best_flip(
        self, formula: CNFFormula, assignment: Dict[int, bool], num_vars: int
    ) -> int:
        """The variable whose flip yields the highest satisfied-clause count."""
        best_variable = 1
        best_score = -1
        for variable in range(1, num_vars + 1):
            flipped = dict(assignment)
            flipped[variable] = not flipped[variable]
            score = self._num_satisfied(formula, flipped)
            if score > best_score:
                best_score = score
                best_variable = variable
        return best_variable
