"""Classical baseline SAT solvers.

The paper positions NBL-SAT against the standard complete (GRASP, Chaff,
BerkMin, MiniSat — DPLL/CDCL style) and stochastic (WalkSAT, GSAT) solvers.
This subpackage implements representatives of both families behind one
interface so the validation and comparison experiments have trustworthy
ground truth and classical reference points:

* :class:`BruteForceSolver` — exhaustive enumeration (also a model counter);
* :class:`DPLLSolver` — unit propagation + pure literals + branching;
* :class:`CDCLSolver` — two-watched-literal propagation over a flat
  int-array clause arena, 1-UIP clause learning, VSIDS branching, LBD
  clause-database reduction, Luby restarts and inprocessing at restart
  boundaries (see :mod:`repro.solvers.cdcl`);
* :class:`WalkSATSolver` / :class:`GSATSolver` — stochastic local search
  (incomplete: they can only answer "SAT" or "unknown").
"""

from repro.solvers.base import SATSolver, SolverResult, SolverStats
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.walksat import WalkSATSolver
from repro.solvers.gsat import GSATSolver
from repro.solvers.registry import available_solvers, make_solver

__all__ = [
    "SATSolver",
    "SolverResult",
    "SolverStats",
    "BruteForceSolver",
    "DPLLSolver",
    "CDCLSolver",
    "WalkSATSolver",
    "GSATSolver",
    "available_solvers",
    "make_solver",
]
