"""Exhaustive-enumeration baseline (and exact model counter)."""

from __future__ import annotations

import numpy as np

from repro.cnf.assignment import Assignment
from repro.cnf.evaluate import satisfying_minterm_mask
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError
from repro.solvers.base import SAT, UNSAT, SATSolver, SolverResult, SolverStats

#: Enumerating beyond this many variables is deliberately refused.
MAX_BRUTE_FORCE_VARIABLES = 24


class BruteForceSolver(SATSolver):
    """Enumerate all 2^n assignments with vectorised bit arithmetic.

    Practical up to ~24 variables; used as ground truth by the validation
    experiments and by the test suite.
    """

    name = "brute-force"
    complete = True

    def __init__(self, max_variables: int = MAX_BRUTE_FORCE_VARIABLES) -> None:
        if max_variables <= 0:
            raise SolverError("max_variables must be positive")
        self.max_variables = max_variables

    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        if formula.num_variables > self.max_variables:
            raise SolverError(
                f"brute force refused: {formula.num_variables} variables exceeds "
                f"the {self.max_variables}-variable limit"
            )
        if formula.num_variables == 0:
            status = UNSAT if formula.has_empty_clause() else SAT
            assignment = Assignment() if status == SAT else None
            return SolverResult(status, assignment, stats)
        # Enumeration is one vectorised operation, so the budget can only be
        # honoured before committing to it.
        self._check_timeout(stats)
        mask = satisfying_minterm_mask(formula)
        stats.evaluations = mask.size
        indices = np.flatnonzero(mask)
        if indices.size == 0:
            return SolverResult(UNSAT, None, stats)
        model = Assignment.from_minterm_index(int(indices[0]), formula.num_variables)
        return SolverResult(SAT, model, stats)

    def model_count(self, formula: CNFFormula) -> int:
        """Exact number of satisfying assignments."""
        if formula.num_variables > self.max_variables:
            raise SolverError(
                f"model counting refused beyond {self.max_variables} variables"
            )
        if formula.num_variables == 0:
            return 0 if formula.has_empty_clause() else 1
        return int(satisfying_minterm_mask(formula).sum())
