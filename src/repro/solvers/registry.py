"""By-name registry of the baseline solvers."""

from __future__ import annotations

from typing import Dict, Type

from repro.exceptions import SolverError
from repro.solvers.base import SATSolver
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.gsat import GSATSolver
from repro.solvers.walksat import WalkSATSolver

_SOLVERS: Dict[str, Type[SATSolver]] = {
    BruteForceSolver.name: BruteForceSolver,
    DPLLSolver.name: DPLLSolver,
    CDCLSolver.name: CDCLSolver,
    WalkSATSolver.name: WalkSATSolver,
    GSATSolver.name: GSATSolver,
}


def available_solvers() -> list[str]:
    """Names of all registered baseline solvers."""
    return sorted(_SOLVERS)


def make_solver(name: str, **kwargs) -> SATSolver:
    """Instantiate a baseline solver by registry name."""
    try:
        cls = _SOLVERS[name]
    except KeyError as exc:
        raise SolverError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from exc
    return cls(**kwargs)
