"""By-name registry of the baseline solvers.

The registry is extensible: downstream code (and :mod:`repro.hybrid`) adds
solvers with :func:`register_solver`, after which they are constructible by
name everywhere a solver name is accepted — the CLI, the portfolio racer and
the batch runtime.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.exceptions import SolverError
from repro.solvers.base import SATSolver
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.gsat import GSATSolver
from repro.solvers.walksat import WalkSATSolver

_SOLVERS: Dict[str, Type[SATSolver]] = {
    BruteForceSolver.name: BruteForceSolver,
    DPLLSolver.name: DPLLSolver,
    CDCLSolver.name: CDCLSolver,
    WalkSATSolver.name: WalkSATSolver,
    GSATSolver.name: GSATSolver,
}


def register_solver(
    cls: Type[SATSolver],
    name: Optional[str] = None,
    override: bool = False,
) -> Type[SATSolver]:
    """Register a :class:`SATSolver` subclass under ``name``.

    Parameters
    ----------
    cls:
        The solver class; must subclass :class:`SATSolver`.
    name:
        Registry key; defaults to ``cls.name``.
    override:
        Allow replacing an existing registration (off by default so typos
        do not silently shadow a built-in).

    Returns
    -------
    The class itself, so the function doubles as a decorator::

        @register_solver
        class MySolver(SATSolver):
            name = "mine"
    """
    if not (isinstance(cls, type) and issubclass(cls, SATSolver)):
        raise SolverError(f"register_solver expects a SATSolver subclass, got {cls!r}")
    key = name if name is not None else cls.name
    if not key or key == "abstract":
        raise SolverError(f"solver class {cls.__name__} needs a non-default name")
    if key in _SOLVERS and not override:
        raise SolverError(
            f"solver name {key!r} is already registered; pass override=True "
            "to replace it"
        )
    _SOLVERS[key] = cls
    return cls


def available_solvers() -> list[str]:
    """Names of all registered baseline solvers."""
    _ensure_extended_solvers()
    return sorted(_SOLVERS)


def make_solver(name: str, preprocess=None, **kwargs) -> SATSolver:
    """Instantiate a baseline solver by registry name.

    ``preprocess`` (``True`` or a :class:`~repro.preprocess.Preprocessor`)
    installs the inprocessing pipeline as the solver's default: every
    :meth:`~repro.solvers.base.SATSolver.solve` call then simplifies the
    formula first and reconstructs returned models over the original
    variables. All other keyword arguments go to the solver constructor.
    """
    _ensure_extended_solvers()
    try:
        cls = _SOLVERS[name]
    except KeyError as exc:
        raise SolverError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from exc
    solver = cls(**kwargs)
    if preprocess is not None:
        from repro.preprocess.pipeline import resolve_preprocessor

        solver.preprocessor = resolve_preprocessor(preprocess)
    return solver


def _ensure_extended_solvers() -> None:
    """Register solvers living outside :mod:`repro.solvers` exactly once.

    The hybrid CPU + NBL-coprocessor solver is defined in :mod:`repro.hybrid`
    (which imports this package), so it cannot be registered at import time
    here without a cycle; it is pulled in lazily on first registry use.
    """
    if "hybrid" in _SOLVERS:
        return
    from repro.hybrid.solver import HybridNBLSolver

    register_solver(HybridNBLSolver, name="hybrid")
