"""CDCL: conflict-driven clause learning SAT solver.

A compact but faithful implementation of the architecture behind the solvers
the paper cites as the state of the art (GRASP, Chaff, BerkMin, MiniSat):

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style activity-based branching with exponential decay,
* geometric restarts,
* learned-clause database without deletion (instances in this project are
  small enough that garbage collection is unnecessary).

Literals are represented as DIMACS-signed integers internally for speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError
from repro.solvers.base import SAT, UNSAT, SATSolver, SolverResult, SolverStats


class CDCLSolver(SATSolver):
    """Conflict-driven clause-learning solver.

    Parameters
    ----------
    vsids_decay:
        Multiplicative decay applied to variable activities after each
        conflict (0 < decay < 1; higher = longer memory).
    restart_base / restart_factor:
        First restart after ``restart_base`` conflicts; each subsequent
        restart interval is multiplied by ``restart_factor`` (geometric
        policy).
    max_conflicts:
        Hard cap on total conflicts; exceeding it raises
        :class:`SolverError` (defensive — the search is complete).
    """

    name = "cdcl"
    complete = True

    def __init__(
        self,
        vsids_decay: float = 0.95,
        restart_base: int = 100,
        restart_factor: float = 1.5,
        max_conflicts: int = 5_000_000,
    ) -> None:
        if not 0.0 < vsids_decay < 1.0:
            raise SolverError("vsids_decay must lie in (0, 1)")
        if restart_base <= 0 or restart_factor < 1.0:
            raise SolverError("invalid restart policy parameters")
        if max_conflicts <= 0:
            raise SolverError("max_conflicts must be positive")
        self._decay = vsids_decay
        self._restart_base = restart_base
        self._restart_factor = restart_factor
        self._max_conflicts = max_conflicts

    # -- public entry ------------------------------------------------------------
    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        num_vars = formula.num_variables

        clauses: List[List[int]] = []
        for clause in formula:
            if clause.is_empty:
                return SolverResult(UNSAT, None, stats)
            if clause.is_tautology():
                continue
            clauses.append(clause.to_ints())
        if not clauses:
            model = Assignment({v: False for v in range(1, num_vars + 1)})
            return SolverResult(SAT, model, stats)

        # Solver state -----------------------------------------------------------
        self._assign: List[int] = [0] * (num_vars + 1)  # 0 / +1 / -1
        self._level: List[int] = [0] * (num_vars + 1)
        self._reason: List[Optional[int]] = [None] * (num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (num_vars + 1)
        self._clauses = clauses
        self._watches: Dict[int, List[int]] = {}
        self._propagate_head = 0

        # Watch the first two literals of every clause; unit clauses are
        # enqueued directly.
        initial_units: List[int] = []
        for index, lits in enumerate(self._clauses):
            if len(lits) == 1:
                initial_units.append(index)
            else:
                self._watch(lits[0], index)
                self._watch(lits[1], index)

        for index in initial_units:
            lit = self._clauses[index][0]
            if self._value(lit) == -1:
                return SolverResult(UNSAT, None, stats)
            if self._value(lit) == 0:
                self._enqueue(lit, index)

        conflicts_until_restart = self._restart_base
        conflicts_since_restart = 0

        while True:
            self._check_timeout(stats)
            conflict = self._propagate(stats)
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if stats.conflicts > self._max_conflicts:
                    raise SolverError(
                        f"CDCL exceeded the conflict cap of {self._max_conflicts}"
                    )
                if self._decision_level() == 0:
                    return SolverResult(UNSAT, None, stats)
                learned, backjump_level = self._analyze(conflict)
                self._backjump(backjump_level)
                self._add_learned(learned, stats)
                self._decay_activities()
                if conflicts_since_restart >= conflicts_until_restart:
                    stats.restarts += 1
                    conflicts_since_restart = 0
                    conflicts_until_restart = int(
                        conflicts_until_restart * self._restart_factor
                    )
                    self._backjump(0)
                continue

            if len(self._trail) == num_vars:
                model = Assignment(
                    {v: self._assign[v] > 0 for v in range(1, num_vars + 1)}
                )
                return SolverResult(SAT, model, stats)

            variable = self._pick_branch_variable(num_vars)
            stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            # Phase saving is overkill here; branch negative first (MiniSat's
            # classic default).
            self._enqueue(-variable, None)

    # -- low-level helpers --------------------------------------------------------
    def _value(self, lit: int) -> int:
        """+1 true, -1 false, 0 unassigned — of a signed literal."""
        value = self._assign[abs(lit)]
        if value == 0:
            return 0
        return value if lit > 0 else -value

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(lit, []).append(clause_index)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        variable = abs(lit)
        self._assign[variable] = 1 if lit > 0 else -1
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._trail.append(lit)

    def _propagate(self, stats: SolverStats) -> Optional[int]:
        """Exhaust unit propagation; return a conflicting clause index or None."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            stats.propagations += 1
            falsified = -lit
            watchers = self._watches.get(falsified, [])
            index = 0
            while index < len(watchers):
                clause_index = watchers[index]
                lits = self._clauses[clause_index]
                # Normalise so that lits[0] is the other watched literal.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) == 1:
                    index += 1
                    continue
                # Look for a replacement watch.
                replacement = None
                for position in range(2, len(lits)):
                    if self._value(lits[position]) != -1:
                        replacement = position
                        break
                if replacement is not None:
                    lits[1], lits[replacement] = lits[replacement], lits[1]
                    watchers[index] = watchers[-1]
                    watchers.pop()
                    self._watch(lits[1], clause_index)
                    continue
                # No replacement: clause is unit or conflicting.
                if self._value(lits[0]) == -1:
                    return clause_index
                self._enqueue(lits[0], clause_index)
                index += 1
        return None

    def _analyze(self, conflict_index: int) -> tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""
        current_level = self._decision_level()
        learned: List[int] = []
        seen = [False] * len(self._assign)
        counter = 0
        lit = 0
        clause = self._clauses[conflict_index]
        trail_index = len(self._trail) - 1

        while True:
            for reason_lit in clause:
                variable = abs(reason_lit)
                if reason_lit == lit or seen[variable]:
                    continue
                if self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            # Walk back the trail to the next seen literal of current level.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            lit = -self._trail[trail_index]
            variable = abs(lit)
            seen[variable] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            reason_index = self._reason[variable]
            if reason_index is None:  # pragma: no cover - defensive
                break
            clause = self._clauses[reason_index]

        learned.insert(0, lit)  # the asserting (first-UIP) literal
        if len(learned) == 1:
            return learned, 0
        backjump = max(self._level[abs(l)] for l in learned[1:])
        return learned, backjump

    def _backjump(self, level: int) -> None:
        while self._trail_lim and self._decision_level() > level:
            boundary = self._trail_lim.pop()
            while len(self._trail) > boundary:
                lit = self._trail.pop()
                variable = abs(lit)
                self._assign[variable] = 0
                self._reason[variable] = None
        self._propagate_head = min(self._propagate_head, len(self._trail))

    def _add_learned(self, learned: List[int], stats: SolverStats) -> None:
        stats.learned_clauses += 1
        asserting = learned[0]
        if len(learned) == 1:
            if self._value(asserting) == 0:
                self._enqueue(asserting, None)
            return
        # Place a literal of the backjump level in the second watch slot so
        # the invariant "watches are the last-falsified literals" holds.
        second = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
        learned[1], learned[second] = learned[second], learned[1]
        self._clauses.append(learned)
        clause_index = len(self._clauses) - 1
        self._watch(learned[0], clause_index)
        self._watch(learned[1], clause_index)
        self._enqueue(asserting, clause_index)

    # -- branching ------------------------------------------------------------------
    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += 1.0

    def _decay_activities(self) -> None:
        for variable in range(1, len(self._activity)):
            self._activity[variable] *= self._decay

    def _pick_branch_variable(self, num_vars: int) -> int:
        best_variable = 0
        best_activity = -1.0
        for variable in range(1, num_vars + 1):
            if self._assign[variable] == 0 and self._activity[variable] > best_activity:
                best_variable = variable
                best_activity = self._activity[variable]
        if best_variable == 0:  # pragma: no cover - defensive
            raise SolverError("no unassigned variable available for branching")
        return best_variable
