"""CDCL solver package: arena kernel, public solver, frozen legacy oracle.

Split into three modules so each can evolve (or, for the legacy oracle,
deliberately *not* evolve) independently:

* :mod:`repro.solvers.cdcl.kernel` — the flat-arena search engine
  (:class:`ArenaKernel`, :func:`luby`),
* :mod:`repro.solvers.cdcl.solver` — the public :class:`CDCLSolver` API,
* :mod:`repro.solvers.cdcl.legacy` — the frozen pre-rewrite
  :class:`LegacyCDCLSolver` used as a differential-testing reference.
"""

from repro.solvers.cdcl.kernel import ArenaKernel, luby
from repro.solvers.cdcl.legacy import LegacyCDCLSolver
from repro.solvers.cdcl.solver import CDCLSolver

__all__ = ["ArenaKernel", "CDCLSolver", "LegacyCDCLSolver", "luby"]
