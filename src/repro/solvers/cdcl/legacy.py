"""Frozen pre-rewrite CDCL kernel, kept as a differential-testing oracle.

This is the per-clause-object CDCL implementation that preceded the flat
arena kernel (:mod:`repro.solvers.cdcl.kernel`), byte-for-byte except for
the class name, solver name, and the removal of the ``make_session``
override (sessions over the legacy solver use the generic re-solve
fallback). It is **not** registered in the solver registry and must not
grow features: its whole value is that it does not change, so
``tests/property/test_kernel_differential.py`` can fuzz the new kernel
against it (and against brute force) and attribute any disagreement to
the rewrite.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError, SolverTimeoutError
from repro.telemetry import instrument as _telemetry
from repro.solvers.base import (
    SAT,
    UNKNOWN,
    UNSAT,
    SATSolver,
    SolverResult,
    SolverStats,
    check_assumption_literal,
)


class LegacyCDCLSolver(SATSolver):
    """The pre-arena CDCL solver, frozen for differential testing.

    Same architecture as the rewritten :class:`repro.solvers.CDCLSolver`
    had before the arena kernel landed: two-watched-literal propagation
    over per-clause Python lists, first-UIP learning, VSIDS with an O(n)
    decay loop, phase saving, geometric restarts, no clause deletion.
    """

    name = "cdcl-legacy"
    complete = True
    proof_capable = True

    def __init__(
        self,
        vsids_decay: float = 0.95,
        restart_base: int = 100,
        restart_factor: float = 1.5,
        max_conflicts: int = 5_000_000,
    ) -> None:
        if not 0.0 < vsids_decay < 1.0:
            raise SolverError("vsids_decay must lie in (0, 1)")
        if restart_base <= 0 or restart_factor < 1.0:
            raise SolverError("invalid restart policy parameters")
        if max_conflicts <= 0:
            raise SolverError("max_conflicts must be positive")
        self._decay = vsids_decay
        self._restart_base = restart_base
        self._restart_factor = restart_factor
        self._max_conflicts = max_conflicts
        self._incremental = False
        self._num_vars = 0

    # -- public entry ------------------------------------------------------------
    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        self._incremental = False
        self._init_state(formula.num_variables)
        for clause in formula:
            if clause.is_tautology():
                continue
            self._attach(clause.to_ints())
            if self._root_conflict:
                self._emit_empty_clause()
                return SolverResult(UNSAT, None, stats)
        return self._search(stats, ())

    # -- proof emission ----------------------------------------------------------
    def _emit_learned(self, learned: Sequence[int]) -> None:
        if self._proof is not None:
            self._proof.add(learned)

    def _emit_empty_clause(self) -> None:
        if self._proof is not None and not self._emitted_empty:
            self._emitted_empty = True
            self._proof.add(())

    # -- incremental API ---------------------------------------------------------
    def begin_incremental(self, num_variables: int = 0) -> None:
        """Switch into persistent mode with an empty clause database."""
        if num_variables < 0:
            raise SolverError(
                f"num_variables must be non-negative, got {num_variables}"
            )
        self._init_state(num_variables)
        self._incremental = True

    def reset_clauses(self, keep_activity: bool = True) -> None:
        """Drop every clause (original and learned) but stay incremental."""
        self._require_incremental("reset_clauses")
        activity = self._activity if keep_activity else None
        phase = self._phase if keep_activity else None
        self._init_state(self._num_vars)
        if activity is not None:
            self._activity = activity
            self._phase = phase
        self._incremental = True

    def ensure_variables(self, num_variables: int) -> None:
        """Grow the variable universe to at least ``num_variables``."""
        self._require_incremental("ensure_variables")
        self._grow(num_variables)

    def attach_clause(self, literals: Iterable[int]) -> None:
        """Add one clause (DIMACS-signed ints) to the persistent database."""
        self._require_incremental("attach_clause")
        lits = self._normalise(literals)
        if lits is None:  # tautology
            return
        if lits:
            self._grow(max(abs(lit) for lit in lits))
        self._backjump(0)
        self._attach(lits)

    def solve_incremental(
        self,
        assumptions: Sequence[int] = (),
        timeout: Optional[float] = None,
    ) -> SolverResult:
        """Solve the persistent database under ``assumptions``."""
        self._require_incremental("solve_incremental")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        assumptions = tuple(
            check_assumption_literal(lit, self._num_vars) for lit in assumptions
        )
        self._deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        trace_span = _telemetry.span("solve")
        start = time.perf_counter()
        try:
            with trace_span:
                if trace_span.recording:
                    trace_span.set(
                        solver=self.name,
                        incremental=True,
                        assumptions=len(assumptions),
                    )
                try:
                    self._backjump(0)
                    if self._root_conflict:
                        self._emit_empty_clause()
                        result = SolverResult(
                            UNSAT,
                            None,
                            SolverStats(),
                            core=() if assumptions else None,
                        )
                    else:
                        result = self._search(SolverStats(), assumptions)
                except SolverTimeoutError as exc:
                    stats = getattr(exc, "stats", None) or SolverStats()
                    result = SolverResult(UNKNOWN, None, stats, timed_out=True)
                    if self._proof is not None:
                        self._proof.mark_incomplete("timeout")
                result.stats.elapsed_seconds = time.perf_counter() - start
                if trace_span.recording:
                    trace_span.set(
                        status=result.status,
                        timed_out=result.timed_out,
                        conflicts=result.stats.conflicts,
                        elapsed_seconds=result.stats.elapsed_seconds,
                    )
        finally:
            self._deadline = None
        result.solver_name = self.name
        if _telemetry.active():
            _telemetry.record_solve(self.name, result)
        return result

    @property
    def root_unsat(self) -> bool:
        """``True`` once the clause database is contradictory at level 0."""
        return getattr(self, "_root_conflict", False)

    # -- state management ---------------------------------------------------------
    def _require_incremental(self, method: str) -> None:
        if not self._incremental:
            raise SolverError(
                f"{method}() requires begin_incremental() to have been called"
            )

    def _init_state(self, num_vars: int) -> None:
        self._num_vars = num_vars
        self._assign: List[int] = [0] * (num_vars + 1)  # 0 / +1 / -1
        self._level: List[int] = [0] * (num_vars + 1)
        self._reason: List[Optional[int]] = [None] * (num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (num_vars + 1)
        self._phase: List[bool] = [False] * (num_vars + 1)
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._propagate_head = 0
        self._root_conflict = False
        self._emitted_empty = False

    def _grow(self, num_vars: int) -> None:
        if num_vars <= self._num_vars:
            return
        extra = num_vars - self._num_vars
        self._assign.extend([0] * extra)
        self._level.extend([0] * extra)
        self._reason.extend([None] * extra)
        self._activity.extend([0.0] * extra)
        self._phase.extend([False] * extra)
        self._num_vars = num_vars

    @staticmethod
    def _normalise(literals: Iterable[int]) -> Optional[List[int]]:
        seen: Dict[int, int] = {}
        for lit in literals:
            if not isinstance(lit, int) or lit == 0:
                raise SolverError(f"invalid literal {lit!r} in clause")
            if seen.get(abs(lit), lit) != lit:
                return None
            seen[abs(lit)] = lit
        return list(seen.values())

    def _attach(self, lits: List[int]) -> None:
        if self._root_conflict:
            return
        if not lits:
            self._root_conflict = True
            return
        if len(lits) == 1:
            value = self._value(lits[0])
            if value == -1:
                self._root_conflict = True
            elif value == 0:
                self._enqueue(lits[0], None)
            return
        lits = sorted(lits, key=lambda lit: self._value(lit) == -1)
        if self._value(lits[0]) == -1:
            self._root_conflict = True
            return
        self._clauses.append(lits)
        index = len(self._clauses) - 1
        self._watch(lits[0], index)
        self._watch(lits[1], index)
        if self._value(lits[1]) == -1 and self._value(lits[0]) == 0:
            self._enqueue(lits[0], index)

    # -- main search loop ----------------------------------------------------------
    def _search(
        self, stats: SolverStats, assumptions: Sequence[int]
    ) -> SolverResult:
        conflicts_until_restart = self._restart_base
        conflicts_since_restart = 0

        while True:
            self._check_timeout(stats)
            if _telemetry.tracing_active():
                before = stats.propagations
                with _telemetry.span("propagate") as prop_span:
                    conflict = self._propagate(stats)
                    prop_span.set(
                        assigned=stats.propagations - before,
                        conflict=conflict is not None,
                    )
            else:
                conflict = self._propagate(stats)
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if stats.conflicts > self._max_conflicts:
                    raise SolverError(
                        f"CDCL exceeded the conflict cap of {self._max_conflicts}"
                    )
                if self._decision_level() == 0:
                    self._root_conflict = True
                    self._emit_empty_clause()
                    return SolverResult(
                        UNSAT, None, stats, core=() if assumptions else None
                    )
                learned, backjump_level = self._analyze(conflict)
                self._backjump(backjump_level)
                self._add_learned(learned, stats)
                self._decay_activities()
                if conflicts_since_restart >= conflicts_until_restart:
                    stats.restarts += 1
                    if _telemetry.tracing_active():
                        _telemetry.event(
                            "restart",
                            number=stats.restarts,
                            conflicts=stats.conflicts,
                            interval=conflicts_until_restart,
                        )
                    if _telemetry.active():
                        _telemetry.record_learned_db_size(
                            self.name, len(self._clauses)
                        )
                    conflicts_since_restart = 0
                    conflicts_until_restart = int(
                        conflicts_until_restart * self._restart_factor
                    )
                    self._backjump(0)
                continue

            next_assumption = None
            falsified_assumption = None
            for lit in assumptions:
                value = self._value(lit)
                if value == -1:
                    falsified_assumption = lit
                    break
                if value == 0:
                    next_assumption = lit
                    break
            if falsified_assumption is not None:
                core = self._analyze_final(falsified_assumption)
                return SolverResult(UNSAT, None, stats, core=core)
            if next_assumption is not None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(next_assumption, None)
                continue

            if len(self._trail) == self._num_vars:
                model = Assignment(
                    {v: self._assign[v] > 0 for v in range(1, self._num_vars + 1)}
                )
                return SolverResult(SAT, model, stats)

            variable = self._pick_branch_variable()
            stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(
                variable if self._phase[variable] else -variable, None
            )

    # -- low-level helpers --------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        if value == 0:
            return 0
        return value if lit > 0 else -value

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(lit, []).append(clause_index)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        variable = abs(lit)
        self._assign[variable] = 1 if lit > 0 else -1
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._trail.append(lit)

    def _propagate(self, stats: SolverStats) -> Optional[int]:
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            stats.propagations += 1
            falsified = -lit
            watchers = self._watches.get(falsified, [])
            index = 0
            while index < len(watchers):
                clause_index = watchers[index]
                lits = self._clauses[clause_index]
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) == 1:
                    index += 1
                    continue
                replacement = None
                for position in range(2, len(lits)):
                    if self._value(lits[position]) != -1:
                        replacement = position
                        break
                if replacement is not None:
                    lits[1], lits[replacement] = lits[replacement], lits[1]
                    watchers[index] = watchers[-1]
                    watchers.pop()
                    self._watch(lits[1], clause_index)
                    continue
                if self._value(lits[0]) == -1:
                    return clause_index
                self._enqueue(lits[0], clause_index)
                index += 1
        return None

    def _analyze(self, conflict_index: int) -> tuple:
        current_level = self._decision_level()
        learned: List[int] = []
        seen = [False] * len(self._assign)
        counter = 0
        lit = 0
        clause = self._clauses[conflict_index]
        trail_index = len(self._trail) - 1

        while True:
            for reason_lit in clause:
                variable = abs(reason_lit)
                if reason_lit == lit or seen[variable]:
                    continue
                if self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            lit = -self._trail[trail_index]
            variable = abs(lit)
            seen[variable] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            reason_index = self._reason[variable]
            if reason_index is None:  # pragma: no cover - defensive
                break
            clause = self._clauses[reason_index]

        learned.insert(0, lit)
        if len(learned) == 1:
            return learned, 0
        backjump = max(self._level[abs(l)] for l in learned[1:])
        return learned, backjump

    def _backjump(self, level: int) -> None:
        while self._trail_lim and self._decision_level() > level:
            boundary = self._trail_lim.pop()
            while len(self._trail) > boundary:
                lit = self._trail.pop()
                variable = abs(lit)
                self._phase[variable] = self._assign[variable] > 0
                self._assign[variable] = 0
                self._reason[variable] = None
        self._propagate_head = min(self._propagate_head, len(self._trail))

    def _analyze_final(self, falsified: int) -> tuple:
        if self._decision_level() == 0:
            return (falsified,)
        seen = [False] * (self._num_vars + 1)
        seen[abs(falsified)] = True
        core = {falsified}
        for position in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[position]
            variable = abs(lit)
            if not seen[variable]:
                continue
            reason_index = self._reason[variable]
            if reason_index is None:
                core.add(lit)
            else:
                for reason_lit in self._clauses[reason_index]:
                    reason_var = abs(reason_lit)
                    if reason_var != variable and self._level[reason_var] > 0:
                        seen[reason_var] = True
            seen[variable] = False
        return tuple(sorted(core, key=abs))

    def _add_learned(self, learned: List[int], stats: SolverStats) -> None:
        stats.learned_clauses += 1
        self._emit_learned(learned)
        asserting = learned[0]
        if len(learned) == 1:
            if self._value(asserting) == 0:
                self._enqueue(asserting, None)
            return
        second = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
        learned[1], learned[second] = learned[second], learned[1]
        self._clauses.append(learned)
        clause_index = len(self._clauses) - 1
        self._watch(learned[0], clause_index)
        self._watch(learned[1], clause_index)
        self._enqueue(asserting, clause_index)

    # -- branching ------------------------------------------------------------------
    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += 1.0

    def _decay_activities(self) -> None:
        for variable in range(1, len(self._activity)):
            self._activity[variable] *= self._decay

    def _pick_branch_variable(self) -> int:
        best_variable = 0
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if self._assign[variable] == 0 and self._activity[variable] > best_activity:
                best_variable = variable
                best_activity = self._activity[variable]
        if best_variable == 0:  # pragma: no cover - defensive
            raise SolverError("no unassigned variable available for branching")
        return best_variable
