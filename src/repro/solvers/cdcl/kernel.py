"""Flat-arena CDCL kernel: raw-speed propagation, learning and restarts.

This module is the hot path of :class:`~repro.solvers.cdcl.CDCLSolver`.
Instead of per-clause Python objects it keeps every clause as a span in a
single flat ``array('i')``:

.. code-block:: text

    arena:  ... | size | flags | lbd | lit lit lit ... | size | flags | ...
                  ^ cref (clause reference = arena offset)

* ``size``  — number of literals in the span,
* ``flags`` — bit 0: learned clause, bit 1: deleted (pending compaction),
* ``lbd``   — literal block distance stamped when the clause was learned,
* literals  — *encoded* ints: variable ``v`` positive is ``2*v``, negative
  ``2*v + 1`` (so negation is ``enc ^ 1`` and the encoding doubles as the
  watch-list index).

Around the arena sit flat per-variable / per-literal lists — ``values``
(one slot per encoded literal: +1 true, -1 false, 0 unassigned), trail,
levels, reasons (clause refs, ``-1`` for decisions), watch lists — so the
propagation loop touches nothing but ints, flat sequences and local
variables.  The kernel implements:

* two-watched-literal unit propagation with in-place watch-list
  compaction (MiniSat's scheme),
* first-UIP conflict analysis producing learned clauses appended to the
  arena, with VSIDS variable bumping and LBD stamping,
* clause-activity + LBD learned-clause database reduction with garbage
  compaction that rebuilds the watch lists,
* Luby-sequence restarts,
* cheap inprocessing at restart boundaries via
  :func:`repro.preprocess.inprocess_learned` (root-satisfied learned
  clauses dropped, root-falsified literals stripped, subsumed learned
  clauses deleted) under a clause budget,
* DRAT emission for every learned, strengthened and deleted clause, and
  final-conflict analysis for minimized assumption cores.

The class is engine-only: result objects, telemetry spans around whole
solves, proof-log ownership and the public solver API live in
:mod:`repro.solvers.cdcl.solver`.
"""

from __future__ import annotations

from array import array
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.telemetry import instrument as _telemetry

__all__ = ["ArenaKernel", "luby"]

#: Ints of header per clause span: size, flags, lbd.
_HEADER = 3
_FLAG_LEARNED = 1
_FLAG_DELETED = 2


def luby(i: int) -> int:
    """The ``i``-th term (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... —
    each power of two appears after all prefixes of the sequence up to the
    previous power have repeated (Luby, Sinclair & Zuckerman 1993).  Restart
    intervals are ``restart_base * luby(k)`` for the ``k``-th restart.
    """
    if i <= 0:
        raise SolverError(f"luby index must be positive, got {i}")
    x = i - 1
    # Smallest complete subsequence (length 2**seq - 1) containing x,
    # then recurse into it (MiniSat's iterative formulation).
    size = 1
    seq = 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


def encode(lit: int) -> int:
    """DIMACS literal -> arena encoding (``2*v`` positive, ``2*v+1`` negative)."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


def decode(enc: int) -> int:
    """Arena encoding -> DIMACS literal."""
    v = enc >> 1
    return -v if enc & 1 else v


class ArenaKernel:
    """CDCL state machine over a flat integer clause arena.

    One instance holds one clause database; :class:`CDCLSolver` creates a
    fresh kernel per plain solve and keeps one alive across
    ``solve_incremental`` calls.  All literals crossing the boundary of
    this class are DIMACS-signed ints; internally everything is encoded.

    Parameters mirror the solver-level knobs: ``decay`` (VSIDS), Luby
    ``restart_base``, ``max_conflicts``, ``reduce_interval`` /
    ``keep_lbd`` (learned-DB reduction), ``inprocess_interval`` (restarts
    between inprocessing passes, 0 disables) and ``inprocess_budget``
    (learned clauses examined per pass).
    """

    def __init__(
        self,
        num_vars: int,
        decay: float = 0.95,
        restart_base: int = 200,
        max_conflicts: int = 5_000_000,
        reduce_interval: int = 2000,
        keep_lbd: int = 2,
        inprocess_interval: int = 4,
        inprocess_budget: int = 2000,
        clause_decay: float = 0.999,
    ) -> None:
        self.decay = decay
        self.restart_base = restart_base
        self.max_conflicts = max_conflicts
        self.reduce_interval = reduce_interval
        self.keep_lbd = keep_lbd
        self.inprocess_interval = inprocess_interval
        self.inprocess_budget = inprocess_budget
        self.clause_decay = clause_decay
        #: DRAT sink (duck-typed ProofLog) of the current run; None = off.
        self.proof = None
        #: Lifetime counters surfaced to telemetry by the solver layer.
        self.reductions = 0
        self.inprocessings = 0
        self.clauses_deleted = 0
        self._restarts_total = 0
        self._conflicts_since_reduce = 0
        self.reset(num_vars)

    # -- state --------------------------------------------------------------
    def reset(
        self,
        num_vars: int,
        activity: Optional[List[float]] = None,
        phase: Optional[List[bool]] = None,
    ) -> None:
        """Fresh clause database over ``num_vars`` variables.

        ``activity`` / ``phase`` (sized ``num_vars + 1``) carry VSIDS
        scores and saved polarities over from a previous database — used
        by the session layer's ``pop`` so rebuilt databases still branch
        on historically active variables first.
        """
        self.num_vars = num_vars
        size = 2 * (num_vars + 1)
        self.arena = array("i")
        # Watch lists are allocated lazily (None = no watchers yet): a
        # database over n variables would otherwise pay for 2n+2 empty
        # lists up front, which dominates load time on large easy
        # instances.
        self.watches: List[Optional[List[int]]] = [None] * size
        self.values: List[int] = [0] * size
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[int] = [-1] * (num_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.head = 0
        self.activity = (
            list(activity) if activity is not None else [0.0] * (num_vars + 1)
        )
        self.phase = list(phase) if phase is not None else [False] * (num_vars + 1)
        self.var_inc = 1.0
        # Branching heap, built lazily on the first pick: propagation-only
        # solves (and the load phase) never pay for it.
        self.heap: Optional[List[Tuple[float, int]]] = None
        self.learned_refs: List[int] = []
        self.clause_act: Dict[int, float] = {}
        self.cla_inc = 1.0
        self.live_clauses = 0
        self.root_conflict = False
        self.emitted_empty = False
        self._conflicts_since_reduce = 0

    def grow(self, num_vars: int) -> None:
        """Extend the variable universe to at least ``num_vars``."""
        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.values.extend([0] * (2 * extra))
        self.watches.extend([None] * (2 * extra))
        self.level.extend([0] * extra)
        self.reason.extend([-1] * extra)
        self.activity.extend([0.0] * extra)
        self.phase.extend([False] * extra)
        if self.heap is not None:
            for v in range(self.num_vars + 1, num_vars + 1):
                heappush(self.heap, (0.0, v))
        self.num_vars = num_vars

    def decision_level(self) -> int:
        """Current decision level (number of open decision scopes)."""
        return len(self.trail_lim)

    # -- proof --------------------------------------------------------------
    def emit_empty(self) -> None:
        """Record the final empty clause, at most once per database state."""
        if self.proof is not None and not self.emitted_empty:
            self.emitted_empty = True
            self.proof.add(())

    # -- clause construction ------------------------------------------------
    def add_clause(self, lits: Sequence[int]) -> None:
        """Insert a normalised problem clause (DIMACS ints) at level 0.

        Mirrors the classic root-level handling: an empty clause flags the
        database contradictory, a (root-)unit clause enqueues its literal,
        a fully falsified clause flags a root conflict.  Watches go on
        non-false literals so the two-watcher invariant holds for clauses
        added mid-session.  The caller must be at decision level 0.
        """
        if self.root_conflict:
            return
        if not lits:
            self.root_conflict = True
            return
        values = self.values
        enc = [encode(lit) for lit in lits]
        if len(enc) == 1:
            value = values[enc[0]]
            if value < 0:
                self.root_conflict = True
            elif value == 0:
                self._enqueue(enc[0], -1)
            return
        # Stable partition: non-false literals first, so both watch slots
        # prefer watchable literals.
        enc.sort(key=lambda e: values[e] < 0)
        if values[enc[0]] < 0:
            self.root_conflict = True
            return
        cref = self._alloc(enc, learned=False, lbd=0)
        if values[enc[1]] < 0 and values[enc[0]] == 0:
            # Unit under the (permanent) root assignment.
            self._enqueue(enc[0], cref)

    def _alloc(self, enc: Sequence[int], learned: bool, lbd: int) -> int:
        """Append a >=2-literal clause span to the arena; watch its head.

        Watch lists are flat ``[cref, blocker, cref, blocker, ...]`` pair
        lists: the blocker is some literal of the clause (initially the
        other watched literal) whose truth lets propagation skip the
        clause without touching the arena at all.
        """
        arena = self.arena
        cref = len(arena)
        arena.append(len(enc))
        arena.append(_FLAG_LEARNED if learned else 0)
        arena.append(lbd)
        arena.extend(enc)
        self._watch(enc[0], cref, enc[1])
        self._watch(enc[1], cref, enc[0])
        self.live_clauses += 1
        if learned:
            self.learned_refs.append(cref)
            self.clause_act[cref] = self.cla_inc
        return cref

    def _watch(self, enc: int, cref: int, blocker: int) -> None:
        """Append a ``(cref, blocker)`` pair to ``enc``'s watch list."""
        ws = self.watches[enc]
        if ws is None:
            self.watches[enc] = [cref, blocker]
        else:
            ws.append(cref)
            ws.append(blocker)

    def load_clauses(self, clauses) -> None:
        """Bulk-insert normalised problem clauses into an empty-trail DB.

        The fast path behind :meth:`CDCLSolver._solve`: no per-clause
        value checks or watch-slot partitioning. Units are enqueued (or
        flag a root conflict); every other clause is appended watching its
        first two literals unconditionally. That may transiently watch a
        literal falsified by a pending unit — sound, because the unit is
        still ahead of the propagation head, so :meth:`propagate` will
        visit the clause and restore the invariant before it is ever
        relied upon. Must not be used once propagation has run
        (``head`` > 0): use :meth:`add_clause` for mid-session inserts.
        """
        if self.head:
            raise SolverError("load_clauses() requires an unpropagated trail")
        arena = self.arena
        watches = self.watches
        values = self.values
        buf: List[int] = []
        cref = len(arena)
        count = 0
        for lits in clauses:
            if not lits:
                self.root_conflict = True
                return
            if len(lits) == 1:
                lit = lits[0]
                enc = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
                value = values[enc]
                if value < 0:
                    self.root_conflict = True
                    return
                if value == 0:
                    self._enqueue(enc, -1)
                continue
            buf.append(len(lits))
            buf.append(0)
            buf.append(0)
            first = second = -1
            for lit in lits:
                enc = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
                buf.append(enc)
                if first < 0:
                    first = enc
                elif second < 0:
                    second = enc
            ws = watches[first]
            if ws is None:
                watches[first] = [cref, second]
            else:
                ws.extend((cref, second))
            ws = watches[second]
            if ws is None:
                watches[second] = [cref, first]
            else:
                ws.extend((cref, first))
            cref += _HEADER + len(lits)
            count += 1
        arena.extend(buf)
        self.live_clauses += count

    def load_formula(self, clauses) -> None:
        """Bulk-load clause objects (iterables of ``.variable``/``.positive``
        literal objects) — the zero-copy twin of :meth:`load_clauses`.

        Skips the DIMACS round-trip entirely: literals are encoded
        straight off the literal objects. Tautologies are *not* filtered:
        a clause containing ``x`` and ``-x`` can never become unit (the
        two literals cannot both be false), so it is inert in the watch
        machinery and merely occupies arena space. Same preconditions and
        watch discipline as :meth:`load_clauses`.
        """
        if self.head:
            raise SolverError("load_formula() requires an unpropagated trail")
        watches = self.watches
        values = self.values
        buf: List[int] = []
        append = buf.append
        cref = len(self.arena)
        count = 0
        for clause in clauses:
            lits = clause.literals
            size = len(lits)
            if size == 0:
                self.root_conflict = True
                return
            if size == 1:
                lit = lits[0]
                enc = (lit.variable << 1) | (not lit.positive)
                value = values[enc]
                if value < 0:
                    self.root_conflict = True
                    return
                if value == 0:
                    self._enqueue(enc, -1)
                continue
            encs = [(lit.variable << 1) | (not lit.positive) for lit in lits]
            append(size)
            append(0)
            append(0)
            buf += encs
            first = encs[0]
            second = encs[1]
            ws = watches[first]
            if ws is None:
                watches[first] = [cref, second]
            else:
                ws.extend((cref, second))
            ws = watches[second]
            if ws is None:
                watches[second] = [cref, first]
            else:
                ws.extend((cref, first))
            cref += _HEADER + size
            count += 1
        self.arena.extend(buf)
        self.live_clauses += count

    def clause_literals(self, cref: int) -> Tuple[int, ...]:
        """The DIMACS literals of the clause at ``cref`` (diagnostics)."""
        arena = self.arena
        base = cref + _HEADER
        return tuple(decode(arena[k]) for k in range(base, base + arena[cref]))

    def _enqueue(self, enc: int, reason: int) -> None:
        self.values[enc] = 1
        self.values[enc ^ 1] = -1
        v = enc >> 1
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(enc)

    # -- propagation (the hot loop) -----------------------------------------
    def propagate(self, stats) -> int:
        """Exhaust unit propagation; return a conflicting cref or -1.

        Everything the inner loop touches is hoisted into locals: the
        arena, the per-literal value list, the watch lists and the trail.
        Watch lists are flat ``[cref, blocker]`` pair lists compacted in
        place (kept watchers slide left over moved ones) exactly once per
        falsified literal; a true blocker skips the clause without any
        arena access at all.
        """
        arena = self.arena
        watches = self.watches
        values = self.values
        trail = self.trail
        level = self.level
        reason = self.reason
        head = self.head
        lvl = len(self.trail_lim)
        start = head
        conflict = -1
        while head < len(trail):
            falsified = trail[head] ^ 1
            head += 1
            ws = watches[falsified]
            if not ws:
                continue
            i = 0
            j = 0
            n = len(ws)
            while i < n:
                blocker = ws[i + 1]
                if values[blocker] > 0:
                    ws[j] = ws[i]
                    ws[j + 1] = blocker
                    i += 2
                    j += 2
                    continue
                cref = ws[i]
                i += 2
                base = cref + 3
                other = arena[base]
                if other == falsified:
                    other = arena[base + 1]
                    arena[base + 1] = falsified
                    arena[base] = other
                if other != blocker and values[other] > 0:
                    ws[j] = cref
                    ws[j + 1] = other
                    j += 2
                    continue
                end = base + arena[cref]
                k = base + 2
                found = -1
                while k < end:
                    if values[arena[k]] >= 0:
                        found = k
                        break
                    k += 1
                if found >= 0:
                    replacement = arena[found]
                    arena[base + 1] = replacement
                    arena[found] = falsified
                    wr = watches[replacement]
                    if wr is None:
                        watches[replacement] = [cref, other]
                    else:
                        wr.append(cref)
                        wr.append(other)
                    continue
                # No replacement: the clause is unit or conflicting.
                ws[j] = cref
                ws[j + 1] = other
                j += 2
                if values[other] < 0:
                    conflict = cref
                    while i < n:  # keep the unvisited tail watched
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                    break
                values[other] = 1
                values[other ^ 1] = -1
                v = other >> 1
                level[v] = lvl
                reason[v] = cref
                trail.append(other)
            del ws[j:]
            if conflict >= 0:
                break
        stats.propagations += head - start
        self.head = head
        return conflict

    # -- conflict analysis --------------------------------------------------
    def analyze(self, conflict: int) -> Tuple[List[int], int, int]:
        """First-UIP analysis: (encoded learned clause, backjump level, LBD).

        The learned clause has the asserting (first-UIP) literal at index 0
        and a literal of the backjump level at index 1, so it can be
        attached with the watch invariant intact.  Resolution walks the
        trail top-down; reason clauses keep their propagated literal at
        span position 0 (the propagation loop never reorders a clause while
        it is a reason), which is skipped as the pivot.
        """
        arena = self.arena
        level = self.level
        reason = self.reason
        trail = self.trail
        activity = self.activity
        var_inc = self.var_inc
        current = len(self.trail_lim)
        seen = bytearray(self.num_vars + 1)
        learned: List[int] = [0]  # slot 0 for the asserting literal
        counter = 0
        cref = conflict
        idx = len(trail) - 1
        first = True
        while True:
            flags = arena[cref + 1]
            if flags & _FLAG_LEARNED:
                self._bump_clause(cref)
            base = cref + _HEADER
            end = base + arena[cref]
            k = base if first else base + 1  # skip the pivot at slot 0
            first = False
            while k < end:
                q = arena[k]
                k += 1
                v = q >> 1
                if seen[v] or level[v] == 0:
                    continue
                seen[v] = 1
                act = activity[v] + var_inc
                activity[v] = act
                if act > 1e100:
                    self._rescale_var_activity()
                    var_inc = self.var_inc
                if level[v] == current:
                    counter += 1
                else:
                    learned.append(q)
            while not seen[trail[idx] >> 1]:
                idx -= 1
            pivot = trail[idx]
            v = pivot >> 1
            idx -= 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                learned[0] = pivot ^ 1
                break
            cref = reason[v]
        if len(learned) > 2:
            self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0, 1
        # Literal of the highest remaining level into the second watch slot.
        second = 1
        best = level[learned[1] >> 1]
        for k in range(2, len(learned)):
            lv = level[learned[k] >> 1]
            if lv > best:
                best = lv
                second = k
        learned[1], learned[second] = learned[second], learned[1]
        lbd = len({level[q >> 1] for q in learned})
        return learned, best, lbd

    def _minimize(self, learned: List[int], seen: bytearray) -> None:
        """Drop self-subsumed literals from the learned clause in place.

        A literal is redundant when every non-root literal of its reason
        clause is itself in the learned clause (MiniSat's non-recursive
        minimization): resolving it away with its reason yields a strict
        subset, so the shortened clause is still RUP against the database.
        ``seen`` still marks exactly the learned clause's non-asserting
        variables when this is called from :meth:`analyze`.
        """
        arena = self.arena
        reason = self.reason
        level = self.level
        kept = 1
        for idx in range(1, len(learned)):
            q = learned[idx]
            v = q >> 1
            cref = reason[v]
            redundant = False
            if cref >= 0:
                base = cref + _HEADER
                end = base + arena[cref]
                redundant = True
                for k in range(base, end):
                    rv = arena[k] >> 1
                    if rv != v and not seen[rv] and level[rv] > 0:
                        redundant = False
                        break
            if not redundant:
                learned[kept] = q
                kept += 1
        del learned[kept:]

    def analyze_final(self, falsified_enc: int) -> Tuple[int, ...]:
        """Minimized failing assumption core (MiniSat ``analyzeFinal``).

        ``falsified_enc`` is the encoded assumption literal found false at
        the current propagation fixpoint.  Its falsifying chain is traced
        back through the trail; every decision reached is an assumption
        (heuristic decisions live strictly above the assumption levels at
        this point) and propagated variables expand into their reason
        clauses.  Returns DIMACS literals sorted by variable.
        """
        if not self.trail_lim:
            return (decode(falsified_enc),)
        arena = self.arena
        reason = self.reason
        level = self.level
        seen = bytearray(self.num_vars + 1)
        seen[falsified_enc >> 1] = 1
        core = {decode(falsified_enc)}
        trail = self.trail
        for position in range(len(trail) - 1, self.trail_lim[0] - 1, -1):
            enc = trail[position]
            v = enc >> 1
            if not seen[v]:
                continue
            cref = reason[v]
            if cref < 0:
                # An assumption decision, recorded as it was assumed.
                core.add(decode(enc))
            else:
                base = cref + _HEADER
                for k in range(base, base + arena[cref]):
                    q = arena[k]
                    qv = q >> 1
                    if qv != v and level[qv] > 0:
                        seen[qv] = 1
            seen[v] = 0
        return tuple(sorted(core, key=abs))

    def learn(self, learned: List[int], stats, lbd: int = 0) -> None:
        """Attach the learned clause (already backjumped) and assert it.

        ``lbd`` is the literal block distance stamped by :meth:`analyze`
        (recomputed here when omitted, e.g. from tests).
        """
        stats.learned_clauses += 1
        if self.proof is not None:
            self.proof.add([decode(q) for q in learned])
        asserting = learned[0]
        if len(learned) == 1:
            if self.values[asserting] == 0:
                self._enqueue(asserting, -1)
            return
        if lbd <= 0:
            lbd = len({self.level[q >> 1] for q in learned[1:]}) + 1
        cref = self._alloc(learned, learned=True, lbd=lbd)
        self._enqueue(asserting, cref)

    # -- backtracking --------------------------------------------------------
    def backjump(self, target_level: int) -> None:
        """Undo every assignment above ``target_level``.

        Unassigned variables re-enter the branching heap with their current
        activity, and their last polarity is saved for phase saving.
        """
        trail_lim = self.trail_lim
        if len(trail_lim) <= target_level:
            self.head = min(self.head, len(self.trail))
            return
        trail = self.trail
        values = self.values
        reason = self.reason
        phase = self.phase
        activity = self.activity
        heap = self.heap
        boundary = trail_lim[target_level]
        if heap is None:
            for k in range(len(trail) - 1, boundary - 1, -1):
                enc = trail[k]
                v = enc >> 1
                phase[v] = not (enc & 1)
                values[enc] = 0
                values[enc ^ 1] = 0
                reason[v] = -1
        else:
            for k in range(len(trail) - 1, boundary - 1, -1):
                enc = trail[k]
                v = enc >> 1
                phase[v] = not (enc & 1)
                values[enc] = 0
                values[enc ^ 1] = 0
                reason[v] = -1
                heappush(heap, (-activity[v], v))
        del trail[boundary:]
        del trail_lim[target_level:]
        if self.head > boundary:
            self.head = boundary

    # -- branching -----------------------------------------------------------
    def _bump_var(self, v: int) -> None:
        act = self.activity[v] + self.var_inc
        self.activity[v] = act
        if act > 1e100:
            self._rescale_var_activity()

    def _rescale_var_activity(self) -> None:
        scale = 1e-100
        activity = self.activity
        for v in range(len(activity)):
            activity[v] *= scale
        self.var_inc *= scale
        values = self.values
        self.heap = [
            (-activity[v], v)
            for v in range(1, self.num_vars + 1)
            if values[v << 1] == 0
        ]
        heapify(self.heap)

    def _bump_clause(self, cref: int) -> None:
        act = self.clause_act.get(cref, 0.0) + self.cla_inc
        self.clause_act[cref] = act
        if act > 1e20:
            scale = 1e-20
            for ref in self.clause_act:
                self.clause_act[ref] *= scale
            self.cla_inc *= scale

    def decay_activities(self) -> None:
        """Per-conflict decay: future bumps weigh more (MiniSat scaling)."""
        self.var_inc /= self.decay
        self.cla_inc /= self.clause_decay

    def pick_branch_variable(self) -> int:
        """Highest-activity unassigned variable (lazy heap with stale skips)."""
        heap = self.heap
        values = self.values
        if heap is None:
            activity = self.activity
            heap = self.heap = [
                (-activity[v], v)
                for v in range(1, self.num_vars + 1)
                if values[v << 1] == 0
            ]
            heapify(heap)
        while heap:
            _, v = heappop(heap)
            if values[v << 1] == 0:
                return v
        raise SolverError("no unassigned variable available for branching")

    # -- learned-clause DB reduction ----------------------------------------
    def locked_refs(self) -> set:
        """Clause refs currently serving as reasons on the trail."""
        reason = self.reason
        return {
            reason[enc >> 1] for enc in self.trail if reason[enc >> 1] >= 0
        }

    def reduce_db(self, stats) -> int:
        """Delete the worst half of the deletable learned clauses.

        Deletable = learned, not a reason of a trail literal, LBD above
        ``keep_lbd`` (glue clauses are kept forever).  Worst-first order is
        highest LBD, then lowest clause activity.  Deleted clauses emit
        DRAT ``d`` lines, and the arena is garbage-compacted (watch lists
        rebuilt) immediately.  Returns the number of deleted clauses.
        """
        arena = self.arena
        locked = self.locked_refs()
        keep_lbd = self.keep_lbd
        candidates = [
            cref
            for cref in self.learned_refs
            if cref not in locked and arena[cref + 2] > keep_lbd
        ]
        if len(candidates) < 2:
            return 0
        clause_act = self.clause_act
        candidates.sort(
            key=lambda cref: (-arena[cref + 2], clause_act.get(cref, 0.0))
        )
        doomed = candidates[: len(candidates) // 2]
        proof = self.proof
        for cref in doomed:
            if proof is not None:
                proof.delete(self.clause_literals(cref))
            arena[cref + 1] |= _FLAG_DELETED
            self.live_clauses -= 1
        self.compact()
        self.reductions += 1
        self.clauses_deleted += len(doomed)
        if _telemetry.active():
            _telemetry.record_cdcl_reduction(len(doomed))
        return len(doomed)

    def compact(self) -> None:
        """Rebuild the arena without deleted spans; rebuild the watches.

        Clause refs change, so reasons on the trail, the learned-ref list
        and the clause-activity table are remapped.  Watch positions (span
        slots 0 and 1) are preserved, so the two-watcher invariant holds
        across compaction at any decision level.
        """
        old = self.arena
        new = array("i")
        remap: Dict[int, int] = {}
        i = 0
        n = len(old)
        while i < n:
            span = _HEADER + old[i]
            if not (old[i + 1] & _FLAG_DELETED):
                remap[i] = len(new)
                new.extend(old[i : i + span])
            i += span
        self.watches = [None] * len(self.watches)
        learned_refs: List[int] = []
        i = 0
        n = len(new)
        while i < n:
            base = i + _HEADER
            self._watch(new[base], i, new[base + 1])
            self._watch(new[base + 1], i, new[base])
            if new[i + 1] & _FLAG_LEARNED:
                learned_refs.append(i)
            i += _HEADER + new[i]
        reason = self.reason
        for enc in self.trail:
            v = enc >> 1
            if reason[v] >= 0:
                reason[v] = remap[reason[v]]
        self.clause_act = {
            remap[cref]: act
            for cref, act in self.clause_act.items()
            if cref in remap
        }
        self.learned_refs = learned_refs
        self.arena = new

    # -- inprocessing at restart boundaries ---------------------------------
    def inprocess(self, stats) -> None:
        """Run the cheap :mod:`repro.preprocess` pass on the learned DB.

        Must be called at decision level 0 (a restart boundary).  Learned
        clauses satisfied at the root are deleted, root-falsified literals
        are stripped (vivification-lite: the shortened clause is emitted
        to the proof before the original is deleted), and learned clauses
        subsumed by any other live clause are dropped — all under the
        kernel's ``inprocess_budget``.  Problem clauses are never touched,
        and reason clauses of root assignments are excluded, so cores and
        model reconstruction stay sound.
        """
        if self.trail_lim:
            raise SolverError("inprocess() requires decision level 0")
        from repro.preprocess.inprocess import inprocess_learned

        arena = self.arena
        locked = self.locked_refs()
        problem: List[Tuple[int, ...]] = []
        learned: List[Tuple[int, Tuple[int, ...]]] = []
        i = 0
        n = len(arena)
        while i < n:
            flags = arena[i + 1]
            if not (flags & _FLAG_DELETED):
                lits = self.clause_literals(i)
                if flags & _FLAG_LEARNED and i not in locked:
                    learned.append((i, lits))
                else:
                    problem.append(lits)
            i += _HEADER + arena[i]
        if not learned:
            return
        root = tuple(decode(enc) for enc in self.trail)
        outcome = inprocess_learned(
            problem, learned, root_literals=root, budget=self.inprocess_budget
        )
        proof = self.proof
        changed = False
        for cref, old_lits, new_lits in outcome.strengthened:
            if proof is not None:
                proof.add(new_lits)
            if not new_lits:
                self.root_conflict = True
                self.emit_empty()
            elif len(new_lits) == 1:
                enc = encode(new_lits[0])
                value = self.values[enc]
                if value < 0:
                    self.root_conflict = True
                    self.emit_empty()
                elif value == 0:
                    self._enqueue(enc, -1)
            else:
                lbd = min(arena[cref + 2], len(new_lits))
                self._alloc([encode(lit) for lit in new_lits], True, lbd)
                # _alloc may reallocate nothing but appends to the same
                # arena object; refresh the local alias defensively.
                arena = self.arena
            if proof is not None:
                proof.delete(old_lits)
            arena[cref + 1] |= _FLAG_DELETED
            self.live_clauses -= 1
            changed = True
        for cref, lits in outcome.dropped:
            if proof is not None:
                proof.delete(lits)
            arena[cref + 1] |= _FLAG_DELETED
            self.live_clauses -= 1
            changed = True
        if changed:
            self.compact()
        self.inprocessings += 1
        self.clauses_deleted += len(outcome.dropped)
        if _telemetry.active():
            _telemetry.record_cdcl_inprocess(
                len(outcome.dropped), len(outcome.strengthened)
            )

    # -- the search loop -----------------------------------------------------
    def search(
        self,
        stats,
        assumptions: Sequence[int],
        check_timeout: Callable,
        solver_name: str = "cdcl",
    ):
        """Run CDCL to a verdict under (DIMACS) ``assumptions``.

        Returns ``(status, model, core)``: ``model`` is a ``{var: bool}``
        dict on SAT; ``core`` is the minimized failing-assumption tuple on
        UNSAT under assumptions, ``()`` on assumption-free UNSAT with
        assumptions present, ``None`` otherwise.  ``check_timeout(stats)``
        is polled once per propagation fixpoint and raises to abort.
        """
        assumed = [encode(lit) for lit in assumptions]
        restart_count = 0
        conflicts_until_restart = self.restart_base * luby(1)
        conflicts_since_restart = 0

        while True:
            check_timeout(stats)
            if _telemetry.tracing_active():
                before = stats.propagations
                with _telemetry.span("propagate") as prop_span:
                    conflict = self.propagate(stats)
                    prop_span.set(
                        assigned=stats.propagations - before,
                        conflict=conflict >= 0,
                    )
            else:
                conflict = self.propagate(stats)
            if conflict >= 0:
                stats.conflicts += 1
                conflicts_since_restart += 1
                self._conflicts_since_reduce += 1
                if stats.conflicts > self.max_conflicts:
                    raise SolverError(
                        f"CDCL exceeded the conflict cap of {self.max_conflicts}"
                    )
                if not self.trail_lim:
                    self.root_conflict = True
                    self.emit_empty()
                    return "UNSAT", None, () if assumed else None
                learned, backjump_level, lbd = self.analyze(conflict)
                self.backjump(backjump_level)
                self.learn(learned, stats, lbd)
                self.decay_activities()
                if (
                    self.reduce_interval
                    and self._conflicts_since_reduce >= self.reduce_interval
                ):
                    self._conflicts_since_reduce = 0
                    self.reduce_db(stats)
                if conflicts_since_restart >= conflicts_until_restart:
                    stats.restarts += 1
                    restart_count += 1
                    self._restarts_total += 1
                    if _telemetry.tracing_active():
                        _telemetry.event(
                            "restart",
                            number=stats.restarts,
                            conflicts=stats.conflicts,
                            interval=conflicts_until_restart,
                        )
                    if _telemetry.active():
                        _telemetry.record_learned_db_size(
                            solver_name, self.live_clauses
                        )
                        _telemetry.record_cdcl_watch_lists(*self.watch_stats())
                    inprocess_due = (
                        self.inprocess_interval
                        and self._restarts_total % self.inprocess_interval == 0
                    )
                    # Keep the already-established assumption levels across
                    # the restart — they must be re-taken verbatim anyway —
                    # unless inprocessing (which needs level 0) is due.
                    self.backjump(
                        0 if inprocess_due else self._assumption_prefix(assumed)
                    )
                    if inprocess_due:
                        self.inprocess(stats)
                        if self.root_conflict:
                            self.emit_empty()
                            return "UNSAT", None, () if assumed else None
                    conflicts_since_restart = 0
                    conflicts_until_restart = self.restart_base * luby(
                        restart_count + 1
                    )
                continue

            # Decide pending assumptions (in order) before heuristic
            # branching; a falsified assumption means UNSAT *under the
            # assumptions* and yields a minimized core.
            next_assumption = -1
            falsified_assumption = -1
            values = self.values
            for enc in assumed:
                value = values[enc]
                if value < 0:
                    falsified_assumption = enc
                    break
                if value == 0:
                    next_assumption = enc
                    break
            if falsified_assumption >= 0:
                core = self.analyze_final(falsified_assumption)
                return "UNSAT", None, core
            if next_assumption >= 0:
                self.trail_lim.append(len(self.trail))
                self._enqueue(next_assumption, -1)
                continue

            if len(self.trail) == self.num_vars:
                model = {
                    v: values[v << 1] > 0 for v in range(1, self.num_vars + 1)
                }
                return "SAT", model, None

            variable = self.pick_branch_variable()
            stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            # Phase saving: re-take the polarity the variable last held
            # (False for never-assigned variables — the classic
            # negative-first default).
            self._enqueue(
                (variable << 1) | (0 if self.phase[variable] else 1), -1
            )

    def _assumption_prefix(self, assumed: Sequence[int]) -> int:
        """Number of leading decision levels that are assumption decisions."""
        if not assumed:
            return 0
        assumed_set = set(assumed)
        trail = self.trail
        prefix = 0
        for boundary in self.trail_lim:
            if trail[boundary] in assumed_set:
                prefix += 1
            else:
                break
        return prefix

    # -- diagnostics ---------------------------------------------------------
    def watch_stats(self) -> Tuple[float, int]:
        """(average, maximum) watch-list length over all literals.

        Lengths count watched clauses (watch lists store ``[cref,
        blocker]`` pairs, so entries are halved).
        """
        lengths = [len(ws) >> 1 if ws else 0 for ws in self.watches[2:]]
        if not lengths:
            return 0.0, 0
        return sum(lengths) / len(lengths), max(lengths)

    def check_invariants(self, at_fixpoint: bool = False) -> List[str]:
        """Structural self-check; returns human-readable violations.

        Verified unconditionally: arena span integrity, every live clause
        watched exactly once from each of its first two literals, every
        watch-list entry pointing at a live clause that has the watching
        literal in a watch slot, value/trail agreement, level monotonicity
        along the trail and reason-clause sanity.  With ``at_fixpoint``
        (after :meth:`propagate` returned no conflict) additionally the
        two-watcher invariant in its blocker-scheme form: a falsified
        watched literal implies the other watch is true *or* some literal
        of the clause is true (a true blocker lets propagation skip the
        clause without repairing its watches).  A falsified watch with no
        true literal anywhere in the clause means propagation missed a
        unit or a conflict.
        """
        errors: List[str] = []
        arena = self.arena
        values = self.values
        # Arena traversal + expected watch sets.
        expected: Dict[int, List[int]] = {}
        i = 0
        n = len(arena)
        while i < n:
            size = arena[i]
            if size < 2:
                errors.append(f"cref {i}: stored clause of size {size}")
                break
            base = i + _HEADER
            if base + size > n:
                errors.append(f"cref {i}: span overruns the arena")
                break
            if not (arena[i + 1] & _FLAG_DELETED):
                for slot in (0, 1):
                    expected.setdefault(arena[base + slot], []).append(i)
                if at_fixpoint:
                    first, second = arena[base], arena[base + 1]
                    if (
                        (values[first] < 0 or values[second] < 0)
                        and values[first] <= 0
                        and values[second] <= 0
                        and not any(
                            values[arena[k]] > 0
                            for k in range(base, base + size)
                        )
                    ):
                        errors.append(
                            f"cref {i}: watch {decode(first)}/"
                            f"{decode(second)} falsified but no literal "
                            "satisfies the clause (missed unit/conflict)"
                        )
            i += _HEADER + size
        for enc, ws in enumerate(self.watches):
            ws = ws or []
            if len(ws) % 2:
                errors.append(
                    f"literal {decode(enc)}: odd watch-list length {len(ws)}"
                )
                continue
            want = sorted(expected.get(enc, []))
            got = sorted(ws[0::2])
            if want != got:
                errors.append(
                    f"literal {decode(enc)}: watch list {got} != expected {want}"
                )
            for pos in range(0, len(ws), 2):
                cref, blocker = ws[pos], ws[pos + 1]
                if cref + _HEADER > n:
                    continue  # already reported via the set mismatch
                base = cref + _HEADER
                span = arena[base : base + arena[cref]]
                if blocker not in span:
                    errors.append(
                        f"literal {decode(enc)}: blocker {decode(blocker)} "
                        f"not a literal of clause at cref {cref}"
                    )
        # Trail/value agreement and level bookkeeping.
        on_trail = set()
        for position, enc in enumerate(self.trail):
            v = enc >> 1
            if values[enc] != 1 or values[enc ^ 1] != -1:
                errors.append(f"trail literal {decode(enc)} not assigned true")
            if v in on_trail:
                errors.append(f"variable x{v} appears twice on the trail")
            on_trail.add(v)
            implied_level = 0
            for mark, boundary in enumerate(self.trail_lim):
                if position >= boundary:
                    implied_level = mark + 1
            if self.level[v] != implied_level:
                errors.append(
                    f"x{v}: level {self.level[v]} but trail says {implied_level}"
                )
            cref = self.reason[enc >> 1]
            if cref >= 0:
                if cref + _HEADER > n or arena[cref + 1] & _FLAG_DELETED:
                    errors.append(f"x{v}: reason cref {cref} is not live")
                elif arena[cref + _HEADER] != enc:
                    errors.append(
                        f"x{v}: reason clause does not assert it at slot 0"
                    )
        assigned = {
            v
            for v in range(1, self.num_vars + 1)
            if values[v << 1] != 0
        }
        if assigned != on_trail:
            errors.append(
                f"assigned variables {sorted(assigned)} != trail {sorted(on_trail)}"
            )
        if self.trail_lim != sorted(self.trail_lim):
            errors.append(f"trail_lim not monotone: {self.trail_lim}")
        if not 0 <= self.head <= len(self.trail):
            errors.append(f"propagation head {self.head} out of range")
        return errors
