"""The public CDCL solver over the flat-arena kernel.

:class:`CDCLSolver` keeps the exact API contract of the pre-rewrite
solver — plain :meth:`~repro.solvers.base.SATSolver.solve`, the
incremental methods used by :class:`repro.incremental.CDCLSession`
(``begin_incremental`` / ``attach_clause`` / ``solve_incremental`` /
``reset_clauses`` / ``ensure_variables`` / ``root_unsat``), proof
emission, cooperative timeouts and telemetry — while delegating the
actual search to :class:`repro.solvers.cdcl.kernel.ArenaKernel`.

Soundness of state retention across incremental calls: a learned clause
is derived by resolution from clauses already in the database, so it is
a logical consequence of the problem clauses alone — never of the
assumptions in force when it was learned. Clause addition is monotone
(inprocessing only ever deletes/strengthens *learned* clauses, which are
consequences), so every learned clause stays valid across
:meth:`attach_clause` and any later assumption set.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from typing import Iterable, Optional, Sequence

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError, SolverTimeoutError
from repro.telemetry import instrument as _telemetry
from repro.solvers.base import (
    SAT,
    UNKNOWN,
    UNSAT,
    SATSolver,
    SolverResult,
    SolverStats,
    check_assumption_literal,
)
from repro.solvers.cdcl.kernel import ArenaKernel


@contextmanager
def _paused_gc():
    """Pause the cyclic garbage collector for the duration of a solve.

    The kernel allocates watch lists at a rate (one small list per watched
    literal) that triggers generational collections every few hundred
    clauses loaded — each sweep scanning a heap of *live* objects with no
    garbage to find, which more than doubles wall time on large
    propagation-bound instances. Reference counting still reclaims
    everything the solver drops; only cycle detection is deferred.
    Restored on every exit path; a no-op when the collector is already
    disabled (e.g. by an enclosing solve or the embedding application).
    """
    if gc.isenabled():
        gc.disable()
        try:
            yield
        finally:
            gc.enable()
    else:
        yield


class CDCLSolver(SATSolver):
    """Conflict-driven clause-learning solver on a flat clause arena.

    The hot path lives in :class:`~repro.solvers.cdcl.kernel.ArenaKernel`:
    two-watched-literal propagation over a single ``array('i')`` clause
    arena, first-UIP learning with LBD stamping, VSIDS branching through a
    lazy heap, phase saving, Luby restarts, periodic learned-clause DB
    reduction with garbage compaction, and cheap inprocessing (learned
    clause subsumption + vivification-lite via :mod:`repro.preprocess`)
    at restart boundaries.

    Parameters
    ----------
    vsids_decay:
        Per-conflict VSIDS decay (0 < decay < 1; higher = longer memory).
        Implemented by scaling the bump increment, not by touching every
        activity.
    restart_base / restart_factor:
        The ``k``-th restart fires after ``restart_base * luby(k)``
        conflicts. ``restart_factor`` is accepted for backward
        compatibility with the geometric policy's signature and ignored.
    max_conflicts:
        Hard cap on total conflicts per solve call; exceeding it raises
        :class:`SolverError` (defensive — the search is complete).
    reduce_interval:
        Conflicts between learned-clause DB reductions (0 disables).
    keep_lbd:
        Learned clauses with LBD at or below this are never deleted
        ("glue" clauses).
    inprocess_interval:
        Restarts between inprocessing passes (0 disables inprocessing).
    inprocess_budget:
        Maximum learned clauses examined per inprocessing pass.
    """

    name = "cdcl"
    complete = True
    proof_capable = True

    def __init__(
        self,
        vsids_decay: float = 0.95,
        restart_base: int = 200,
        restart_factor: float = 1.5,
        max_conflicts: int = 5_000_000,
        reduce_interval: int = 2000,
        keep_lbd: int = 2,
        inprocess_interval: int = 4,
        inprocess_budget: int = 2000,
    ) -> None:
        if not 0.0 < vsids_decay < 1.0:
            raise SolverError("vsids_decay must lie in (0, 1)")
        if restart_base <= 0 or restart_factor < 1.0:
            raise SolverError("invalid restart policy parameters")
        if max_conflicts <= 0:
            raise SolverError("max_conflicts must be positive")
        if reduce_interval < 0 or inprocess_interval < 0 or inprocess_budget < 0:
            raise SolverError("reduction/inprocessing knobs must be non-negative")
        if keep_lbd < 0:
            raise SolverError("keep_lbd must be non-negative")
        self._decay = vsids_decay
        self._restart_base = restart_base
        self._restart_factor = restart_factor
        self._max_conflicts = max_conflicts
        self._reduce_interval = reduce_interval
        self._keep_lbd = keep_lbd
        self._inprocess_interval = inprocess_interval
        self._inprocess_budget = inprocess_budget
        self._incremental = False
        self._num_vars = 0
        self._kernel: Optional[ArenaKernel] = None

    def _new_kernel(self, num_vars: int) -> ArenaKernel:
        return ArenaKernel(
            num_vars,
            decay=self._decay,
            restart_base=self._restart_base,
            max_conflicts=self._max_conflicts,
            reduce_interval=self._reduce_interval,
            keep_lbd=self._keep_lbd,
            inprocess_interval=self._inprocess_interval,
            inprocess_budget=self._inprocess_budget,
        )

    # -- public entry ------------------------------------------------------------
    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        self._incremental = False
        self._num_vars = formula.num_variables
        with _paused_gc():
            kernel = self._kernel = self._new_kernel(formula.num_variables)
            kernel.proof = self._proof
            # Bulk load: no per-clause watch partitioning or value checks —
            # propagation repairs any watch transiently falsified by a unit
            # that is still pending (see ArenaKernel.load_clauses /
            # load_formula, which also explains why tautologies need no
            # filtering here).
            kernel.load_formula(formula.clauses)
            if kernel.root_conflict:
                kernel.emit_empty()
                return SolverResult(UNSAT, None, stats)
            return self._run_search(stats, (), kernel)

    def _run_search(
        self, stats: SolverStats, assumptions: Sequence[int], kernel: ArenaKernel
    ) -> SolverResult:
        try:
            with _paused_gc():
                status, model, core = kernel.search(
                    stats, assumptions, self._check_timeout, solver_name=self.name
                )
        finally:
            self._record_kernel_counters(stats)
        if status == SAT:
            return SolverResult(SAT, Assignment.from_trusted_model(model), stats)
        return SolverResult(UNSAT, None, stats, core=core)

    @staticmethod
    def _record_kernel_counters(stats: SolverStats) -> None:
        if _telemetry.active():
            _telemetry.record_cdcl_propagations(stats.propagations)

    # -- incremental API ---------------------------------------------------------
    def begin_incremental(self, num_variables: int = 0) -> None:
        """Switch into persistent mode with an empty clause database.

        After this call, :meth:`attach_clause` and :meth:`solve_incremental`
        operate on state retained across calls; a later plain :meth:`solve`
        discards that state again.
        """
        if num_variables < 0:
            raise SolverError(
                f"num_variables must be non-negative, got {num_variables}"
            )
        self._num_vars = num_variables
        self._kernel = self._new_kernel(num_variables)
        self._incremental = True

    def reset_clauses(self, keep_activity: bool = True) -> None:
        """Drop every clause (original and learned) but stay incremental.

        ``keep_activity`` preserves the VSIDS scores and saved phases so a
        rebuild after a scope pop still branches on historically active
        variables (with their last polarities) first. Used by
        :class:`repro.incremental.CDCLSession` to implement ``pop``
        soundly: learned clauses may depend on popped problem clauses, so
        they cannot survive a retraction.
        """
        self._require_incremental("reset_clauses")
        kernel = self._kernel
        activity = kernel.activity if keep_activity else None
        phase = kernel.phase if keep_activity else None
        kernel.reset(self._num_vars, activity=activity, phase=phase)

    def ensure_variables(self, num_variables: int) -> None:
        """Grow the variable universe to at least ``num_variables``."""
        self._require_incremental("ensure_variables")
        self._kernel.grow(num_variables)
        self._num_vars = self._kernel.num_vars

    def attach_clause(self, literals: Iterable[int]) -> None:
        """Add one clause (DIMACS-signed ints) to the persistent database.

        Tautologies are dropped, duplicate literals are removed, and the
        variable universe grows as needed. Adding a clause that is already
        falsified at the root level marks the whole database unsatisfiable
        (see :attr:`root_unsat`).
        """
        self._require_incremental("attach_clause")
        lits = self._normalise(literals)
        if lits is None:  # tautology
            return
        kernel = self._kernel
        if lits:
            kernel.grow(max(abs(lit) for lit in lits))
            self._num_vars = kernel.num_vars
        kernel.backjump(0)
        kernel.add_clause(lits)

    def solve_incremental(
        self,
        assumptions: Sequence[int] = (),
        timeout: Optional[float] = None,
    ) -> SolverResult:
        """Solve the persistent database under ``assumptions``.

        Assumptions are DIMACS-signed literals treated as temporary decisions
        for this call only: an ``UNSAT`` answer means *unsatisfiable under
        these assumptions* (unless :attr:`root_unsat` has become true, in
        which case the database itself is contradictory). Learned clauses
        and VSIDS activities persist into subsequent calls. Assumption
        enqueues are not counted in ``stats.decisions`` — that counter
        tracks heuristic branching only, so decision counts stay comparable
        with solving the assumption-strengthened formula from scratch.
        """
        self._require_incremental("solve_incremental")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        kernel = self._kernel
        assumptions = tuple(
            check_assumption_literal(lit, self._num_vars) for lit in assumptions
        )
        kernel.proof = self._proof
        self._deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        trace_span = _telemetry.span("solve")
        start = time.perf_counter()
        try:
            with trace_span:
                if trace_span.recording:
                    trace_span.set(
                        solver=self.name,
                        incremental=True,
                        assumptions=len(assumptions),
                    )
                try:
                    kernel.backjump(0)
                    if kernel.root_conflict:
                        kernel.emit_empty()
                        result = SolverResult(
                            UNSAT,
                            None,
                            SolverStats(),
                            core=() if assumptions else None,
                        )
                    else:
                        result = self._run_search(
                            SolverStats(), assumptions, kernel
                        )
                except SolverTimeoutError as exc:
                    stats = getattr(exc, "stats", None) or SolverStats()
                    result = SolverResult(UNKNOWN, None, stats, timed_out=True)
                    if self._proof is not None:
                        self._proof.mark_incomplete("timeout")
                result.stats.elapsed_seconds = time.perf_counter() - start
                if trace_span.recording:
                    trace_span.set(
                        status=result.status,
                        timed_out=result.timed_out,
                        conflicts=result.stats.conflicts,
                        elapsed_seconds=result.stats.elapsed_seconds,
                    )
        finally:
            self._deadline = None
        result.solver_name = self.name
        if _telemetry.active():
            _telemetry.record_solve(self.name, result)
        return result

    @property
    def root_unsat(self) -> bool:
        """``True`` once the clause database is contradictory at level 0."""
        kernel = self._kernel
        return kernel.root_conflict if kernel is not None else False

    def make_session(
        self, base_formula=None, num_variables: int = 0, preprocess=None
    ):
        """A native incremental session over a *fresh* solver clone.

        Overrides the generic re-solve fallback of
        :meth:`repro.solvers.base.SATSolver.make_session`: the session keeps
        learned clauses and branching activity across queries instead of
        restarting from scratch. When ``preprocess`` is requested the
        generic re-solve session is used instead — per-query preprocessing
        rewrites the clause database, which is incompatible with retaining
        native incremental state.
        """
        if preprocess:
            return super().make_session(
                base_formula=base_formula,
                num_variables=num_variables,
                preprocess=preprocess,
            )
        from repro.incremental.session import CDCLSession

        clone = CDCLSolver(
            vsids_decay=self._decay,
            restart_base=self._restart_base,
            restart_factor=self._restart_factor,
            max_conflicts=self._max_conflicts,
            reduce_interval=self._reduce_interval,
            keep_lbd=self._keep_lbd,
            inprocess_interval=self._inprocess_interval,
            inprocess_budget=self._inprocess_budget,
        )
        return CDCLSession(
            clone, base_formula=base_formula, num_variables=num_variables
        )

    # -- helpers -----------------------------------------------------------------
    def _require_incremental(self, method: str) -> None:
        if not self._incremental or self._kernel is None:
            raise SolverError(
                f"{method}() requires begin_incremental() to have been called"
            )

    @staticmethod
    def _normalise(literals: Iterable[int]) -> Optional[list]:
        """Dedupe a clause; ``None`` marks a tautology (to be dropped)."""
        seen = {}
        for lit in literals:
            if not isinstance(lit, int) or lit == 0:
                raise SolverError(f"invalid literal {lit!r} in clause")
            if seen.get(abs(lit), lit) != lit:
                return None
            seen[abs(lit)] = lit
        return list(seen.values())
