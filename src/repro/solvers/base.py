"""Common interface of the baseline SAT solvers."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError, SolverTimeoutError
from repro.telemetry import instrument as _telemetry

#: Possible solver verdicts. Incomplete solvers may return ``UNKNOWN``.
SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


def check_assumption_literal(lit: object, num_variables: int) -> int:
    """Validate one assumption literal against a variable universe.

    The single validator shared by the incremental solver and session
    layers: a literal must be a non-zero, non-bool DIMACS integer whose
    variable lies inside the universe. Returns the literal; raises
    :class:`SolverError` otherwise.
    """
    if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
        raise SolverError(f"invalid assumption literal {lit!r}")
    if abs(lit) > num_variables:
        raise SolverError(
            f"assumption {lit} mentions x{abs(lit)} beyond the "
            f"{num_variables}-variable universe"
        )
    return lit


@dataclass
class SolverStats:
    """Work counters shared across solver families.

    Not every counter is meaningful for every solver; unused ones stay 0.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    flips: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SolverResult:
    """Outcome of one solver run.

    Attributes
    ----------
    status:
        ``"SAT"``, ``"UNSAT"`` or ``"UNKNOWN"`` (incomplete solvers only).
    assignment:
        A satisfying assignment when ``status == "SAT"`` (complete over all
        formula variables), else ``None``.
    stats:
        Work counters (decisions, propagations, conflicts, flips, ...).
    solver_name:
        Registry name of the solver that produced the result.
    """

    status: str
    assignment: Optional[Assignment] = None
    stats: SolverStats = field(default_factory=SolverStats)
    solver_name: str = ""
    #: ``True`` when the run ended because its wall-clock budget expired
    #: (the status is then ``UNKNOWN``).
    timed_out: bool = False
    #: Minimized failing assumption core: set (to a subset of the given
    #: assumptions) when the verdict is UNSAT *under assumptions*; the
    #: empty tuple when the formula is UNSAT regardless of the assumptions;
    #: ``None`` for every other run (no assumptions, or not UNSAT).
    core: Optional[tuple] = None

    @property
    def is_sat(self) -> bool:
        """``True`` when the verdict is SAT."""
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        """``True`` when the verdict is UNSAT."""
        return self.status == UNSAT

    def __str__(self) -> str:
        if self.is_sat:
            return f"{self.solver_name}: SAT ({self.assignment})"
        return f"{self.solver_name}: {self.status}"


class SATSolver(abc.ABC):
    """Abstract base class of every baseline solver."""

    #: Registry name, overridden by subclasses.
    name: str = "abstract"
    #: Whether the solver can prove unsatisfiability.
    complete: bool = True
    #: Default :class:`~repro.preprocess.Preprocessor` applied by
    #: :meth:`solve` when its ``preprocess`` argument is left at ``None``.
    #: Set via ``make_solver(name, preprocess=...)`` or directly; stays
    #: ``None`` (no preprocessing) out of the box.
    preprocessor = None
    #: Whether the solver emits DRAT proof lines into an attached
    #: :class:`~repro.proofs.ProofLog` (see :meth:`set_proof_log`).
    proof_capable: bool = False
    #: The proof sink of the current run; ``None`` disables emission.
    _proof = None
    #: Cooperative wall-clock deadline (``time.monotonic()`` value) set by
    #: :meth:`solve` for the duration of one run; ``None`` means no budget.
    _deadline: Optional[float] = None

    def set_proof_log(self, log) -> None:
        """Attach a persistent :class:`~repro.proofs.ProofLog` sink.

        Emission is best-effort by solver: only :attr:`proof_capable`
        solvers write DRAT lines; for the rest the log simply stays empty
        (and :meth:`solve` flags it incomplete when such a solver produces
        the UNSAT verdict itself). ``None`` detaches the sink. A per-run
        log passed via ``solve(proof=...)`` temporarily shadows the one
        set here.
        """
        self._proof = log

    @abc.abstractmethod
    def _solve(self, formula: CNFFormula) -> SolverResult:
        """Solver-specific search; must fill status/assignment/stats."""

    def _check_timeout(self, stats: Optional[SolverStats] = None) -> None:
        """Raise :class:`SolverTimeoutError` once the run's budget expires.

        Subclasses call this from their inner search loops; the error carries
        the work counters accumulated so far so :meth:`solve` can report them
        on the resulting ``UNKNOWN`` verdict.
        """
        if self._deadline is not None and time.monotonic() >= self._deadline:
            error = SolverTimeoutError(f"{self.name} exceeded its time budget")
            error.stats = stats
            raise error

    def make_session(
        self, base_formula=None, num_variables: int = 0, preprocess=None
    ):
        """An :class:`~repro.incremental.IncrementalSession` over this solver.

        The default implementation is the generic re-solve fallback
        (:class:`repro.incremental.ResolveSession`): each ``solve`` call
        rebuilds the accumulated formula (plus one unit clause per
        assumption) and runs :meth:`solve` from scratch. Solvers with native
        incremental state (:class:`~repro.solvers.cdcl.CDCLSolver`) override
        this to retain learned clauses and heuristic scores across calls.

        ``preprocess`` (``True`` or a :class:`~repro.preprocess.Preprocessor`)
        makes every query of the session run the inprocessing pipeline with
        the query's assumption variables frozen before solving.
        """
        # Imported lazily: repro.incremental builds on this module.
        from repro.incremental.session import ResolveSession

        return ResolveSession(
            self,
            base_formula=base_formula,
            num_variables=num_variables,
            preprocessor=preprocess,
        )

    def solve(
        self,
        formula: CNFFormula,
        timeout: Optional[float] = None,
        preprocess=None,
        frozen: Iterable[int] = (),
        proof=None,
    ) -> SolverResult:
        """Solve ``formula``, verify any returned model, and time the run.

        Parameters
        ----------
        formula:
            The CNF instance.
        timeout:
            Optional wall-clock budget in seconds. Enforcement is
            cooperative — solvers poll :meth:`_check_timeout` from their
            search loops — so the run may overshoot by one loop iteration.
            An expired budget yields an ``UNKNOWN`` result with
            ``timed_out=True`` rather than an exception.
        preprocess:
            ``None`` (default) uses :attr:`preprocessor`; ``False`` forces
            preprocessing off; ``True`` or a
            :class:`~repro.preprocess.Preprocessor` runs the inprocessing
            pipeline first, solves the reduced formula and reconstructs the
            model over the original variables. A verdict decided during
            preprocessing is returned without running the search at all —
            including ``UNSAT`` from an otherwise incomplete solver, since
            the pipeline's refutation is sound.
        frozen:
            Variables preprocessing must not eliminate (only meaningful
            with ``preprocess``); callers that solve under assumption
            literals freeze their variables.
        proof:
            A path or :class:`~repro.proofs.ProofLog` to record a DRAT
            proof into for this run. Proof-capable solvers (CDCL) write
            their derivations; the preprocessing pipeline adds lines for
            its eliminations; a timed-out run flags the log
            ``incomplete``; and an UNSAT verdict produced by a solver
            that emits no lines is flagged the same way, so a complete
            proof never silently goes missing. A path is opened (and
            closed) here; an existing log is left open for its owner.
        """
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        from repro.preprocess.pipeline import resolve_preprocessor
        from repro.proofs.log import resolve_proof_log

        preprocessor = (
            self.preprocessor if preprocess is None else resolve_preprocessor(preprocess)
        )
        proof_log, owns_proof = resolve_proof_log(proof)
        previous_proof = self._proof
        if proof_log is not None:
            self._proof = proof_log
        else:
            proof_log = self._proof  # a persistent sink set via set_proof_log
        self._deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        trace_span = _telemetry.span("solve")
        start = time.perf_counter()
        try:
            with trace_span:
                if trace_span.recording:
                    trace_span.set(
                        solver=self.name,
                        variables=formula.num_variables,
                        clauses=formula.num_clauses,
                        preprocess=preprocessor is not None,
                    )
                try:
                    if preprocessor is None:
                        result = self._solve(formula)
                        if (
                            proof_log is not None
                            and result.status == UNSAT
                            and not self.proof_capable
                        ):
                            proof_log.mark_incomplete(
                                f"{self.name} emits no proof lines"
                            )
                    else:
                        result = self._solve_preprocessed(
                            formula, preprocessor, frozen, proof_log=proof_log
                        )
                except SolverTimeoutError as exc:
                    stats = getattr(exc, "stats", None) or SolverStats()
                    result = SolverResult(UNKNOWN, None, stats, timed_out=True)
                    if proof_log is not None:
                        proof_log.mark_incomplete("timeout")
                # Stamp the elapsed time inside the span (and on every exit
                # path, the timeout branch included) so span duration and
                # stats agree.
                result.stats.elapsed_seconds = time.perf_counter() - start
                if trace_span.recording:
                    trace_span.set(
                        status=result.status,
                        timed_out=result.timed_out,
                        decisions=result.stats.decisions,
                        propagations=result.stats.propagations,
                        conflicts=result.stats.conflicts,
                        elapsed_seconds=result.stats.elapsed_seconds,
                    )
        finally:
            self._deadline = None
            self._proof = previous_proof
            if owns_proof and proof_log is not None:
                proof_log.close()
        result.solver_name = self.name
        if _telemetry.active():
            _telemetry.record_solve(self.name, result)
        if result.is_sat:
            if result.assignment is None:
                raise RuntimeError(f"{self.name} returned SAT without a model")
            if not formula.evaluate(result.assignment.as_dict()):
                raise RuntimeError(
                    f"{self.name} returned a non-satisfying assignment"
                )
        return result

    def _solve_preprocessed(
        self, formula: CNFFormula, preprocessor, frozen: Iterable[int],
        proof_log=None,
    ) -> SolverResult:
        """Preprocess, search the residual formula, reconstruct the model.

        With a proof log, the pipeline's eliminations are recorded in the
        original numbering and the residual search writes through a
        translating view that renames the reduced variables back, so the
        combined trace checks against the *original* formula.
        """
        reduction = preprocessor.preprocess(
            formula, frozen=frozen, deadline=self._deadline, proof=proof_log
        )
        if reduction.status == UNSAT:
            return SolverResult(UNSAT, None, SolverStats())
        if reduction.status == SAT:
            return SolverResult(SAT, reduction.reconstruct(), SolverStats())
        saved_proof = self._proof
        if proof_log is not None:
            inverse = {new: old for old, new in reduction.variable_map.items()}
            self._proof = proof_log.translated(inverse)
        try:
            result = self._solve(reduction.formula)
        finally:
            self._proof = saved_proof
        if (
            proof_log is not None
            and result.status == UNSAT
            and not self.proof_capable
        ):
            proof_log.mark_incomplete(f"{self.name} emits no proof lines")
        if result.is_sat and result.assignment is not None:
            result.assignment = reduction.reconstruct(result.assignment.as_dict())
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
