"""WalkSAT: stochastic local search (incomplete) baseline."""

from __future__ import annotations

from typing import Dict

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.exceptions import SolverError
from repro.solvers.base import SAT, UNKNOWN, SATSolver, SolverResult, SolverStats
from repro.telemetry import instrument as _telemetry
from repro.utils.rng import SeedLike, as_generator


class WalkSATSolver(SATSolver):
    """WalkSAT with random restarts.

    In each step an unsatisfied clause is picked uniformly at random; with
    probability ``noise`` a random variable of that clause is flipped,
    otherwise the variable whose flip minimises the number of newly broken
    clauses is flipped (the classic "break-count" greedy move).

    Incomplete: returns ``SAT`` with a model, or ``UNKNOWN`` after the flip
    budget is exhausted — never ``UNSAT``.
    """

    name = "walksat"
    complete = False

    def __init__(
        self,
        max_flips: int = 2_000,
        max_tries: int = 5,
        noise: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        if max_flips <= 0 or max_tries <= 0:
            raise SolverError("max_flips and max_tries must be positive")
        if not 0.0 <= noise <= 1.0:
            raise SolverError(f"noise must lie in [0, 1], got {noise}")
        self._max_flips = max_flips
        self._max_tries = max_tries
        self._noise = noise
        self._rng = as_generator(seed)

    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        if formula.has_empty_clause():
            return SolverResult(UNKNOWN, None, stats)
        num_vars = formula.num_variables
        if num_vars == 0:
            return SolverResult(SAT, Assignment(), stats)

        for _ in range(self._max_tries):
            stats.restarts += 1
            if _telemetry.tracing_active():
                _telemetry.event(
                    "restart", attempt=stats.restarts, flips=stats.flips
                )
            assignment: Dict[int, bool] = {
                v: bool(self._rng.integers(0, 2)) for v in range(1, num_vars + 1)
            }
            for _ in range(self._max_flips):
                self._check_timeout(stats)
                unsatisfied = formula.unsatisfied_clauses(assignment)
                stats.evaluations += 1
                if not unsatisfied:
                    return SolverResult(SAT, Assignment(assignment), stats)
                clause = unsatisfied[int(self._rng.integers(0, len(unsatisfied)))]
                variables = sorted(clause.variables())
                if self._rng.random() < self._noise:
                    variable = int(variables[int(self._rng.integers(0, len(variables)))])
                else:
                    variable = self._best_break_variable(formula, assignment, variables)
                assignment[variable] = not assignment[variable]
                stats.flips += 1
            # restart with a fresh random assignment
        return SolverResult(UNKNOWN, None, stats)

    def _best_break_variable(
        self,
        formula: CNFFormula,
        assignment: Dict[int, bool],
        candidates: list[int],
    ) -> int:
        """The candidate whose flip breaks the fewest currently satisfied clauses."""
        best_variable = candidates[0]
        best_break = None
        for variable in candidates:
            flipped = dict(assignment)
            flipped[variable] = not flipped[variable]
            break_count = 0
            for clause in formula:
                if variable not in clause.variables():
                    continue
                if clause.evaluate(assignment) and not clause.evaluate(flipped):
                    break_count += 1
            if best_break is None or break_count < best_break:
                best_break = break_count
                best_variable = variable
        return best_variable
