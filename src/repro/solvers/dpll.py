"""DPLL: the classic complete backtracking SAT procedure.

Davis-Putnam-Logemann-Loveland search with unit propagation, pure-literal
elimination and a pluggable branching heuristic. This is the "traditional
approach" the paper contrasts NBL-SAT against (one candidate assignment at a
time, backtracking on conflicts), and it is also the CPU-side solver of the
hybrid engine (:mod:`repro.hybrid`), whose NBL coprocessor supplies the
branching heuristic.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.simplify import pure_literal_eliminate, unit_propagate
from repro.exceptions import SolverError
from repro.solvers.base import SAT, UNSAT, SATSolver, SolverResult, SolverStats
from repro.telemetry import instrument as _telemetry

#: A branching heuristic maps (residual formula, current bindings) to a
#: (variable, first_value) decision, or ``None`` to fall back to the default.
BranchingHeuristic = Callable[[CNFFormula, Dict[int, bool]], Optional[tuple[int, bool]]]


def most_frequent_variable(
    formula: CNFFormula, _assignment: Dict[int, bool]
) -> Optional[tuple[int, bool]]:
    """Default heuristic: branch on the most frequent unassigned variable.

    The first value tried is the polarity with which the variable occurs
    more often (a cheap Jeroslow-Wang-flavoured choice).
    """
    counts: Dict[int, int] = {}
    positive_counts: Dict[int, int] = {}
    for clause in formula:
        for literal in clause:
            counts[literal.variable] = counts.get(literal.variable, 0) + 1
            if literal.positive:
                positive_counts[literal.variable] = (
                    positive_counts.get(literal.variable, 0) + 1
                )
    if not counts:
        return None
    variable = max(counts, key=lambda v: (counts[v], -v))
    prefer_true = positive_counts.get(variable, 0) * 2 >= counts[variable]
    return variable, prefer_true


class DPLLSolver(SATSolver):
    """Complete DPLL search.

    Parameters
    ----------
    branching:
        Optional branching heuristic; the hybrid solver injects the NBL-
        coprocessor-guided one here.
    use_pure_literals:
        Disable to measure the effect of pure-literal elimination.
    max_decisions:
        Safety cap; exceeding it raises :class:`SolverError` (the search is
        exhaustive, so this only matters for adversarially large inputs).
    """

    name = "dpll"
    complete = True

    def __init__(
        self,
        branching: Optional[BranchingHeuristic] = None,
        use_pure_literals: bool = True,
        max_decisions: int = 10_000_000,
    ) -> None:
        if max_decisions <= 0:
            raise SolverError("max_decisions must be positive")
        self._branching = branching or most_frequent_variable
        self._use_pure_literals = use_pure_literals
        self._max_decisions = max_decisions

    def _solve(self, formula: CNFFormula) -> SolverResult:
        stats = SolverStats()
        model = self._search(formula, {}, stats)
        if model is None:
            return SolverResult(UNSAT, None, stats)
        # Unconstrained variables default to False to complete the model.
        complete = {
            var: model.get(var, False)
            for var in range(1, formula.num_variables + 1)
        }
        return SolverResult(SAT, Assignment(complete), stats)

    # -- recursive search ------------------------------------------------------
    def _search(
        self,
        formula: CNFFormula,
        assignment: Dict[int, bool],
        stats: SolverStats,
    ) -> Optional[Dict[int, bool]]:
        self._check_timeout(stats)
        unit_result = unit_propagate(formula)
        stats.propagations += len(unit_result.forced)
        if _telemetry.tracing_active():
            _telemetry.event(
                "propagate",
                forced=len(unit_result.forced),
                conflict=unit_result.conflict,
            )
        assignment = {**assignment, **unit_result.forced}
        if unit_result.conflict:
            stats.conflicts += 1
            return None
        formula = unit_result.formula

        if self._use_pure_literals:
            pure_result = pure_literal_eliminate(formula)
            stats.propagations += len(pure_result.forced)
            assignment = {**assignment, **pure_result.forced}
            if pure_result.conflict:
                stats.conflicts += 1
                return None
            formula = pure_result.formula

        if formula.num_clauses == 0:
            return assignment
        if formula.has_empty_clause():
            stats.conflicts += 1
            return None

        decision = self._branching(formula, assignment)
        if decision is None:
            decision = most_frequent_variable(formula, assignment)
        if decision is None:
            # No unassigned variable left in any clause yet clauses remain:
            # they must all be empty, handled above; defensive fallback.
            stats.conflicts += 1
            return None
        variable, first_value = decision

        for value in (first_value, not first_value):
            stats.decisions += 1
            if stats.decisions > self._max_decisions:
                raise SolverError(
                    f"DPLL exceeded the decision cap of {self._max_decisions}"
                )
            result = self._search(
                formula.condition(variable, value),
                {**assignment, variable: value},
                stats,
            )
            if result is not None:
                return result
        return None
