"""repro — reproduction of "Boolean Satisfiability using Noise Based Logic".

The package implements the paper's NBL-SAT scheme end-to-end:

* :mod:`repro.cnf` — CNF formulas, DIMACS I/O, instance generators;
* :mod:`repro.noise` — basis noise carriers and the per-instance noise bank;
* :mod:`repro.hyperspace` — the NBL hyperspace algebra (superpositions,
  cube subspaces, the reference hyperspace τ_N);
* :mod:`repro.core` — the NBL-SAT engines (sampled and exact), Algorithm 1
  (single-operation SAT check), Algorithm 2 (assignment determination) and
  the SNR model;
* :mod:`repro.solvers` — classical baseline solvers (brute force, DPLL,
  CDCL, WalkSAT, GSAT);
* :mod:`repro.analog` — the analog block-level hardware realization;
* :mod:`repro.sbl` / :mod:`repro.rtw` — sinusoid- and telegraph-wave-based
  realizations;
* :mod:`repro.hybrid` — the CPU + NBL-coprocessor hybrid solver;
* :mod:`repro.preprocess` — SatELite-style inprocessing (units, pure
  literals, subsumption/strengthening, blocked clauses, bounded variable
  elimination) with model reconstruction, hooked into every solver,
  job and session via ``preprocess=``;
* :mod:`repro.incremental` — incremental solving sessions
  (``add_clause``/``solve(assumptions)``/``push``/``pop``) over every
  solver spec, native in the CDCL engine;
* :mod:`repro.runtime` — the high-throughput serving layer: batch
  ingestion, worker pools, portfolio racing and the
  ``(fingerprint, assumptions)``-keyed result cache;
* :mod:`repro.telemetry` — structured tracing (nested spans), the
  process-wide metrics registry (Prometheus/JSON exporters) and the
  persistent ``BENCH_*.json`` performance trajectory;
* :mod:`repro.analysis` — SNR / convergence / discrimination analysis;
* :mod:`repro.experiments` — drivers reproducing the paper's figure and the
  derived tables.

Quickstart::

    from repro import NBLSATSolver
    from repro.cnf import CNFFormula

    formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
    solver = NBLSATSolver(engine="symbolic")
    result = solver.solve(formula)
    print(result.satisfiable, result.assignment)
"""

from repro._version import __version__
from repro.core import (
    AssignmentResult,
    CheckResult,
    NBLConfig,
    NBLSATSolver,
    SampledNBLEngine,
    SymbolicNBLEngine,
    nbl_sat_check,
    nbl_sat_solve,
)

__all__ = [
    "__version__",
    "AssignmentResult",
    "CheckResult",
    "NBLConfig",
    "NBLSATSolver",
    "SampledNBLEngine",
    "SymbolicNBLEngine",
    "nbl_sat_check",
    "nbl_sat_solve",
]
