"""Shared utilities: RNG management, running statistics, text plots/tables.

These helpers are deliberately dependency-light (NumPy only) so that every
other subpackage can rely on them without import cycles.
"""

from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.stats import (
    RunningStats,
    confidence_interval,
    mean_confidence_halfwidth,
)
from repro.utils.ascii_plot import ascii_line_plot, ascii_histogram
from repro.utils.tables import format_table, format_markdown_table
from repro.utils.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_positive_float,
    check_probability,
    check_in_choices,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "RunningStats",
    "confidence_interval",
    "mean_confidence_halfwidth",
    "ascii_line_plot",
    "ascii_histogram",
    "format_table",
    "format_markdown_table",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_in_choices",
]
