"""Random number generator management.

Everything stochastic in this library (noise carriers, random instance
generators, stochastic local search solvers) flows through
:func:`as_generator` or :class:`RandomState` so experiments are reproducible
from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, an existing generator
        (returned unchanged) or a :class:`numpy.random.SeedSequence`.

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    independent of each other and of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seq.spawn(count)]


class RandomState:
    """A named, seedable source of child generators.

    Experiments construct one :class:`RandomState` from their seed and hand
    independent child generators to each stochastic component, keyed by a
    human-readable name. Asking twice for the same name returns *different*
    generators (a counter is mixed into the spawn key), which is what the
    repeated-trial experiments need.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._seed_sequence = seed
        elif isinstance(seed, np.random.Generator):
            self._seed_sequence = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        else:
            self._seed_sequence = np.random.SeedSequence(seed)
        self._counter = 0

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The root seed sequence of this state."""
        return self._seed_sequence

    def generator(self, name: Optional[str] = None) -> np.random.Generator:
        """Return a fresh, independent generator.

        ``name`` only serves documentation/debugging purposes; independence
        is guaranteed because :meth:`numpy.random.SeedSequence.spawn` advances
        the parent's spawn counter on every call.
        """
        self._counter += 1
        child = self._seed_sequence.spawn(1)[0]
        return np.random.Generator(np.random.PCG64(child))

    def integers(self, low: int, high: int, size: Optional[int] = None):
        """Convenience wrapper drawing integers from a fresh child stream."""
        return self.generator().integers(low, high, size=size)

    def choice(self, options: Sequence, size: Optional[int] = None):
        """Convenience wrapper drawing choices from a fresh child stream."""
        return self.generator().choice(options, size=size)
