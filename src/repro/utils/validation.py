"""Small argument-validation helpers shared across the library.

All helpers raise :class:`ValueError`/:class:`TypeError` with messages that
name the offending parameter, which keeps the public API error messages
consistent.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

T = TypeVar("T")


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_positive_float(value: float, name: str) -> float:
    """Return ``value`` as float if it is strictly positive, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    result = float(value)
    if result <= 0.0:
        raise ValueError(f"{name} must be positive, got {value}")
    return result


def check_probability(value: float, name: str) -> float:
    """Return ``value`` as float if it lies in [0, 1], else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    result = float(value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return result


def check_in_choices(value: T, name: str, choices: Iterable[T]) -> T:
    """Return ``value`` if it is one of ``choices``, else raise."""
    options = list(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value
