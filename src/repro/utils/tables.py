"""Plain-text and Markdown table formatting for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _normalise(headers: Sequence[str], rows: Iterable[Sequence[object]]):
    header_cells = [str(h) for h in headers]
    row_cells = [[_stringify(cell) for cell in row] for row in rows]
    for row in row_cells:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_cells)}: {row}"
            )
    return header_cells, row_cells


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a fixed-width, pipe-separated text table."""
    header_cells, row_cells = _normalise(headers, rows)
    widths = [len(h) for h in header_cells]
    for row in row_cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(header_cells), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in row_cells)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Format a GitHub-flavoured Markdown table."""
    header_cells, row_cells = _normalise(headers, rows)
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in row_cells)
    return "\n".join(lines)
