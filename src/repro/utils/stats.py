"""Streaming statistics used by the sampled NBL engines.

The sampled NBL-SAT checker consumes noise in batches whose total length can
reach 1e8 samples (the paper's budget), so means and variances must be
accumulated online. :class:`RunningStats` implements the batched
Welford/Chan update, which is numerically stable for this use case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class _Moments:
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0


class RunningStats:
    """Online mean / variance accumulator over scalar samples.

    Supports single values (:meth:`push`) and whole NumPy batches
    (:meth:`push_batch`, using Chan et al.'s parallel-merge update), and can
    merge with other accumulators (:meth:`merge`).
    """

    def __init__(self) -> None:
        self._m = _Moments()

    # -- updates -----------------------------------------------------------
    def push(self, value: float) -> None:
        """Add a single sample."""
        m = self._m
        m.count += 1
        delta = value - m.mean
        m.mean += delta / m.count
        m.m2 += delta * (value - m.mean)

    def push_batch(self, values: np.ndarray) -> None:
        """Add every element of ``values`` (flattened) in one update."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        n_b = arr.size
        if n_b == 0:
            return
        mean_b = float(arr.mean())
        m2_b = float(((arr - mean_b) ** 2).sum())
        self._merge_moments(n_b, mean_b, m2_b)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one."""
        o = other._m
        if o.count:
            self._merge_moments(o.count, o.mean, o.m2)

    def _merge_moments(self, n_b: int, mean_b: float, m2_b: float) -> None:
        m = self._m
        n_a = m.count
        n = n_a + n_b
        delta = mean_b - m.mean
        m.mean = m.mean + delta * n_b / n
        m.m2 = m.m2 + m2_b + delta * delta * n_a * n_b / n
        m.count = n

    # -- queries -----------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of samples accumulated so far."""
        return self._m.count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._m.mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self._m.count < 2:
            return 0.0
        return self._m.m2 / (self._m.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Standard error of the mean (0.0 with fewer than two samples)."""
        if self._m.count < 2:
            return 0.0
        return self.std / math.sqrt(self._m.count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


def mean_confidence_halfwidth(stats: RunningStats, z: float = 3.0) -> float:
    """Half-width of a ``z``-sigma confidence interval on the mean."""
    return z * stats.std_error


def confidence_interval(stats: RunningStats, z: float = 3.0) -> tuple[float, float]:
    """Return the ``(low, high)`` z-sigma confidence interval on the mean."""
    half = mean_confidence_halfwidth(stats, z)
    return stats.mean - half, stats.mean + half
