"""Minimal ASCII plotting for experiment output.

The benchmark harness has no plotting dependency available offline, so the
figure reproductions render their series as ASCII line plots that go straight
into terminal output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

_SERIES_MARKS = "*o+x#@%&"


def ascii_line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    logx: bool = False,
) -> str:
    """Render one or more ``name -> (xs, ys)`` series as an ASCII plot.

    Parameters
    ----------
    series:
        Mapping from series name to ``(xs, ys)`` pairs of equal length.
    width, height:
        Character dimensions of the plotting area (excluding axes labels).
    title:
        Optional title printed above the plot.
    logx:
        Plot x on a log10 scale (x values must be positive).
    """
    if not series:
        raise ValueError("ascii_line_plot requires at least one series")
    all_x: list[float] = []
    all_y: list[float] = []
    prepared: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(list(xs), dtype=float)
        y = np.asarray(list(ys), dtype=float)
        if x.size != y.size:
            raise ValueError(f"series {name!r} has mismatched x/y lengths")
        if x.size == 0:
            raise ValueError(f"series {name!r} is empty")
        if logx:
            if np.any(x <= 0):
                raise ValueError("logx requires strictly positive x values")
            x = np.log10(x)
        prepared[name] = (x, y)
        all_x.extend(x.tolist())
        all_y.extend(y.tolist())

    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    for idx, (name, (x, y)) in enumerate(prepared.items()):
        mark = _SERIES_MARKS[idx % len(_SERIES_MARKS)]
        for xi, yi in zip(x, y):
            grid[to_row(float(yi))][to_col(float(xi))] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"y_max = {y_max:.4g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_label = "log10(x)" if logx else "x"
    lines.append(f"y_min = {y_min:.4g}   {x_label}: {x_min:.4g} .. {x_max:.4g}")
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} = {name}"
        for i, name in enumerate(prepared)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal ASCII histogram of ``values``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("ascii_histogram requires at least one value")
    counts, edges = np.histogram(arr, bins=bins)
    max_count = counts.max() if counts.max() > 0 else 1
    lines = []
    if title:
        lines.append(title)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / max_count * width))
        lines.append(f"[{lo:+.3g}, {hi:+.3g}) {bar} {count}")
    return "\n".join(lines)
