"""Benchmark regenerating Table B1 — NBL-SAT vs. classical baseline solvers.

Run with::

    pytest benchmarks/bench_baselines.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.baseline_comparison import run_baseline_comparison


def test_baseline_comparison_table(run_once, benchmark):
    record = run_once(run_baseline_comparison, seed=0)
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    # All complete approaches must agree on every instance.
    for row in record.rows:
        assert row[-1] is True
