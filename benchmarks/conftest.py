"""Benchmark-suite configuration.

Every benchmark wraps one experiment driver from :mod:`repro.experiments`
with reduced-but-representative budgets, runs it once per benchmark round
(``pedantic`` mode, one round) and stores the resulting table in
``benchmark.extra_info`` so the regenerated rows are visible in the
pytest-benchmark JSON output (``--benchmark-json``).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``func`` exactly once under the benchmark timer and return its result."""

    def runner(func, *args, **kwargs):
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        return result

    return runner
