"""Benchmark of the compiled analog NBL-SAT engine (Section V hardware model).

Measures the throughput of the block-level simulation on the Section IV SAT
instance and of the end-to-end Algorithm 2 run on the analog engine, and
records the engine's bill of materials.

Run with::

    pytest benchmarks/bench_analog_engine.py --benchmark-only -s
"""

from __future__ import annotations

from repro.analog.compiler import AnalogNBLEngine
from repro.cnf.paper_instances import section4_sat_instance
from repro.core.assignment import find_satisfying_assignment
from repro.noise.telegraph import BipolarCarrier

MAX_SAMPLES = 100_000


def _make_engine(seed: int = 7) -> AnalogNBLEngine:
    return AnalogNBLEngine(
        section4_sat_instance(),
        carrier=BipolarCarrier(),
        seed=seed,
        max_samples=MAX_SAMPLES,
        block_size=25_000,
    )


def test_analog_single_check(run_once, benchmark):
    engine = _make_engine()
    benchmark.extra_info["bill_of_materials"] = engine.component_counts()
    result = run_once(engine.check)
    print()
    print("bill of materials:", engine.component_counts())
    print("check result:", result)
    assert result.satisfiable


def test_analog_algorithm2(run_once, benchmark):
    engine = _make_engine(seed=11)
    result = run_once(find_satisfying_assignment, engine)
    print()
    print("assignment result:", result)
    assert result.satisfiable and result.verified
