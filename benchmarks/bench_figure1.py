"""Benchmark regenerating the paper's Figure 1 (Section IV).

Regenerates the S_N running-mean traces for the SAT and UNSAT instances and
checks the shape the paper reports: the SAT trace converges to the positive
asymptote K·(1/12)^{nm} while the UNSAT trace converges to zero.

Run with::

    pytest benchmarks/bench_figure1.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.figure1 import run_figure1

#: Noise samples per instance. The paper ran up to 1e8; 6e5 reproduces the
#: separation and the 1/sqrt(N) envelope in a couple of seconds.
FIGURE1_SAMPLES = 600_000


def test_figure1_traces(run_once, benchmark):
    result = run_once(run_figure1, max_samples=FIGURE1_SAMPLES, seed=0)
    benchmark.extra_info["table"] = result.record.to_text()
    benchmark.extra_info["exact_sat_asymptote"] = result.expected_sat_mean
    print()
    print(result.record.to_text())
    print()
    print(result.ascii_plot())
    # Shape assertions mirroring the paper's figure.
    assert result.record.rows[0][-1] is True   # SAT decided SAT
    assert result.record.rows[1][-1] is True   # UNSAT decided UNSAT
    assert result.sat_trace[1][-1] > 0.5 * result.expected_sat_mean
    assert abs(result.unsat_trace[1][-1]) < 4.0 * result.expected_sat_mean
