"""Benchmark regenerating Table A1 — Algorithm 1 vs. exhaustive ground truth.

Run with::

    pytest benchmarks/bench_checker_validation.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.checker_validation import run_checker_validation

SAMPLES_PER_CHECK = 60_000


def test_checker_validation_table(run_once, benchmark):
    record = run_once(
        run_checker_validation, num_samples=SAMPLES_PER_CHECK, seed=0
    )
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    # The exact (symbolic) engine must agree with ground truth on every row.
    for row in record.rows:
        assert row[4] == row[3]
