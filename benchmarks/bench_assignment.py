"""Benchmark regenerating Table A2 — Algorithm 2 assignment determination.

Run with::

    pytest benchmarks/bench_assignment.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.assignment_validation import run_assignment_validation

SAMPLES_PER_CHECK = 60_000


def test_assignment_validation_table(run_once, benchmark):
    record = run_once(
        run_assignment_validation, num_samples=SAMPLES_PER_CHECK, seed=0
    )
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    # Every symbolic run must return a verified assignment in n + 1 checks.
    for row in record.rows:
        assert row[5] is True
        assert row[4] == row[1] + 1
