"""Append one CDCL-kernel measurement to the ``BENCH_cdcl.json`` trajectory.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_trajectory.py            # append
    PYTHONPATH=src python benchmarks/record_trajectory.py --check    # validate
    PYTHONPATH=src python benchmarks/record_trajectory.py --service  # service entry

The workload is fixed and fully deterministic, in two blocks:

* the *search* block — a pigeonhole refutation, a C5 graph-coloring
  encoding and a band of phase-transition random 3-SAT instances —
  exercises the full conflict-analysis machinery;
* the *bcp* block — a long implication chain solved fresh (load + one
  propagation cascade) and the same chain loaded once into an
  incremental session and re-propagated across repeated assumption
  queries — measures raw unit-propagation throughput, the way the
  always-on solve server experiences the kernel.

Entries appended over time are directly comparable. The headline metrics
are ``decisions_per_sec`` and ``propagations_per_sec`` of the CDCL
kernel across the whole workload; per-block rates are recorded alongside
so search-machinery and propagation-throughput changes stay separable.

``--check`` runs the same workload but *validates* instead of appending:

* the workload must produce the expected verdicts;
* ``propagations_per_sec`` must not regress below the trajectory's seed
  entry times ``--min-speedup`` (default 1.0 — no regression);
* the telemetry artifacts (optional ``--trace``/``--metrics`` outputs) must
  be readable back;
* the projected cost of the disabled-telemetry guards on the CDCL hot path
  must stay under ``--max-overhead`` (default 3%). The projection
  multiplies the measured per-guard cost of ``telemetry``'s disabled
  checks by the guard count of one enabled run (counted from a trace) and
  compares it against the measured per-solve wall time;
* the projected cost of the disabled proof-emission guards
  (``self._proof is not None`` at every learned-clause site) must stay
  under ``--max-proof-overhead`` (default 10%), using the workload's own
  conflict counts as the guard count.

``--service`` appends a ``service-throughput`` entry to
``BENCH_service.json`` instead: an in-process :class:`SolveService` is
driven through a cold pass (every request executes) and a warm pass
(every request absorbed by the sharded cache / in-flight dedup), and the
jobs-per-second of each pass is recorded.

Exit codes: 0 on success; 1 when a check fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.cnf import CNFFormula  # noqa: E402
from repro.cnf.generators import random_ksat  # noqa: E402
from repro.cnf.structured import (  # noqa: E402
    cycle_graph_edges,
    graph_coloring_formula,
    pigeonhole_formula,
)
from repro.runtime.pool import WorkerPool  # noqa: E402
from repro.service import ServiceConfig, SolveService  # noqa: E402
from repro.solvers.cdcl import CDCLSolver  # noqa: E402
from repro.telemetry import instrument as _instrument  # noqa: E402

DEFAULT_BENCH_FILE = REPO_ROOT / "BENCH_cdcl.json"
DEFAULT_SERVICE_BENCH_FILE = REPO_ROOT / "BENCH_service.json"

#: Phase-transition band of the fixed random 3-SAT block.
_RANDOM_VARIABLES = 40
_RANDOM_RATIO = 4.26
_RANDOM_SEEDS = tuple(range(8))

#: The bcp (propagation-throughput) block: implication-chain length for
#: the fresh solve, and chain length / query count for the incremental
#: re-propagation runner.
_BCP_CHAIN_VARIABLES = 60_000
_BCP_SESSION_VARIABLES = 30_000
_BCP_SESSION_QUERIES = 10

#: The fixed service-throughput workload: distinct instances for the
#: cold pass, each resubmitted ``_SERVICE_WARM_COPIES`` times warm.
_SERVICE_FORMULAS = 16
_SERVICE_WARM_COPIES = 3
_SERVICE_VARIABLES = 12
_SERVICE_RATIO = 4.26


def _chain_formula(num_vars: int, rooted: bool) -> CNFFormula:
    """A binary implication chain ``x1 -> x2 -> ... -> xn``.

    ``rooted`` adds the unit ``(x1)``, making the instance solvable by a
    single propagation cascade; without it the cascade is triggered by
    assuming ``x1``.
    """
    clauses = [[1]] if rooted else []
    clauses.extend([-i, i + 1] for i in range(1, num_vars))
    return CNFFormula.from_ints(clauses, num_variables=num_vars)


def _run_incremental_bcp():
    """Re-propagate one chain across repeated warm assumption queries.

    The chain is loaded into an incremental solver once (setup, not
    timed), then solved ``_BCP_SESSION_QUERIES`` times under the
    assumption ``x1`` — each query backtracks to the root and replays
    the full implication cascade, so the measured wall time is almost
    pure propagation with zero clause-load cost, exactly the shape of a
    warm solve-server query stream.
    """
    solver = CDCLSolver()
    solver.begin_incremental(num_variables=_BCP_SESSION_VARIABLES)
    for i in range(1, _BCP_SESSION_VARIABLES):
        solver.attach_clause([-i, i + 1])
    return [
        solver.solve_incremental(assumptions=[1])
        for _ in range(_BCP_SESSION_QUERIES)
    ]


def _workload():
    """The fixed instance list: ``(label, block, runner, expected_status)``.

    ``block`` groups instances for the per-block rate metrics ("search"
    or "bcp"); ``runner`` is a zero-argument callable returning one
    :class:`SolverResult` or a list of them.
    """

    def fresh(formula):
        return lambda: CDCLSolver().solve(formula)

    instances = [
        ("pigeonhole-5-4", "search", fresh(pigeonhole_formula(5, 4)), "UNSAT"),
        (
            "coloring-c5-3",
            "search",
            fresh(graph_coloring_formula(cycle_graph_edges(5), 5, 3)),
            "SAT",
        ),
    ]
    num_clauses = max(1, int(round(_RANDOM_RATIO * _RANDOM_VARIABLES)))
    for seed in _RANDOM_SEEDS:
        instances.append(
            (
                f"random-3sat-{_RANDOM_VARIABLES}v-s{seed}",
                "search",
                fresh(random_ksat(_RANDOM_VARIABLES, num_clauses, seed=seed)),
                None,  # verdict varies by seed at the phase transition
            )
        )
    instances.append(
        (
            f"bcp-chain-{_BCP_CHAIN_VARIABLES // 1000}k",
            "bcp",
            fresh(_chain_formula(_BCP_CHAIN_VARIABLES, rooted=True)),
            "SAT",
        )
    )
    instances.append(
        (
            f"bcp-session-chain-{_BCP_SESSION_VARIABLES // 1000}k"
            f"-x{_BCP_SESSION_QUERIES}",
            "bcp",
            _run_incremental_bcp,
            "SAT",
        )
    )
    return instances


def _run_workload():
    """Run every instance; returns (aggregate dict, per-instance results).

    The aggregate carries whole-workload totals plus per-block
    ``<block>_propagations`` / ``<block>_wall_seconds`` subtotals.
    """
    totals = {
        "decisions": 0,
        "propagations": 0,
        "conflicts": 0,
        "wall_seconds": 0.0,
    }
    results = []
    for label, block, runner, expected in _workload():
        outcome = runner()
        for result in outcome if isinstance(outcome, list) else [outcome]:
            if expected is not None and result.status != expected:
                raise SystemExit(
                    f"workload instance {label} returned {result.status}, "
                    f"expected {expected}"
                )
            totals["decisions"] += result.stats.decisions
            totals["propagations"] += result.stats.propagations
            totals["conflicts"] += result.stats.conflicts
            totals["wall_seconds"] += result.stats.elapsed_seconds
            totals[f"{block}_propagations"] = (
                totals.get(f"{block}_propagations", 0)
                + result.stats.propagations
            )
            totals[f"{block}_wall_seconds"] = (
                totals.get(f"{block}_wall_seconds", 0.0)
                + result.stats.elapsed_seconds
            )
            results.append((label, result))
    return totals, results


def _build_record(totals, instance_count: int) -> telemetry.BenchRecord:
    wall = max(totals["wall_seconds"], 1e-9)
    metrics = {
        "decisions_per_sec": round(totals["decisions"] / wall, 2),
        "propagations_per_sec": round(totals["propagations"] / wall, 2),
        "decisions": float(totals["decisions"]),
        "propagations": float(totals["propagations"]),
        "conflicts": float(totals["conflicts"]),
        "wall_seconds": round(wall, 6),
    }
    # Per-block rates keep search-machinery and raw-propagation changes
    # separable in the trajectory.
    for block in ("search", "bcp"):
        props = totals.get(f"{block}_propagations", 0)
        block_wall = totals.get(f"{block}_wall_seconds", 0.0)
        if props:
            metrics[f"{block}_propagations_per_sec"] = round(
                props / max(block_wall, 1e-9), 2
            )
    return telemetry.BenchRecord(
        benchmark="cdcl-kernel",
        metrics=metrics,
        workload={
            "instances": instance_count,
            "pigeonhole": "5 pigeons / 4 holes",
            "coloring": "C5 with 3 colors",
            "random": (
                f"{len(_RANDOM_SEEDS)} x 3-SAT, {_RANDOM_VARIABLES} vars, "
                f"ratio {_RANDOM_RATIO}, seeds {_RANDOM_SEEDS[0]}.."
                f"{_RANDOM_SEEDS[-1]}"
            ),
            "bcp": (
                f"implication chain {_BCP_CHAIN_VARIABLES} vars fresh; "
                f"chain {_BCP_SESSION_VARIABLES} vars incremental x"
                f"{_BCP_SESSION_QUERIES} assumption queries"
            ),
        },
        meta={
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    )


def _seed_propagation_rate(bench_file) -> float:
    """``propagations_per_sec`` of the trajectory's seed cdcl-kernel entry.

    Returns 0.0 when the file is missing or holds no cdcl-kernel entry
    (a fresh checkout) — the regression gate is skipped in that case.
    """
    path = Path(bench_file)
    if not path.exists():
        return 0.0
    for record in telemetry.load_bench_records(path):
        if record.benchmark == "cdcl-kernel":
            return float(record.metrics.get("propagations_per_sec", 0.0))
    return 0.0


def run_service_workload() -> dict:
    """Drive an in-process :class:`SolveService` cold, then warm.

    The cold pass submits ``_SERVICE_FORMULAS`` distinct instances
    concurrently into an empty cache, so every request executes a fresh
    solve. The warm pass resubmits each instance ``_SERVICE_WARM_COPIES``
    times concurrently; every one of those requests must be absorbed by
    the sharded result cache (or, had the representative still been in
    flight, by dedup) without reaching the executor. Returns the metrics
    dict of one ``service-throughput`` trajectory entry; raises
    ``SystemExit`` when a request fails or a warm request re-executes.
    """
    num_clauses = max(1, int(round(_SERVICE_RATIO * _SERVICE_VARIABLES)))
    clause_lists = [
        random_ksat(_SERVICE_VARIABLES, num_clauses, seed=seed).to_ints()
        for seed in range(_SERVICE_FORMULAS)
    ]

    def request(tag: str, index: int, clauses) -> str:
        return json.dumps(
            {
                "op": "solve",
                "id": f"{tag}-{index}",
                "clauses": clauses,
                "num_variables": _SERVICE_VARIABLES,
            }
        )

    cold = [request("cold", i, c) for i, c in enumerate(clause_lists)]
    warm = [
        request(f"warm{copy}", i, clauses)
        for copy in range(_SERVICE_WARM_COPIES)
        for i, clauses in enumerate(clause_lists)
    ]

    executor = WorkerPool(workers=1, master_seed=7).executor(inline=False)
    service = SolveService(
        ServiceConfig(solver="cdcl", queue_limit=len(cold) + len(warm)),
        executor=executor,
    )

    async def drive(lines):
        start = time.perf_counter()
        responses = await asyncio.gather(
            *(service.handle_line(line) for line in lines)
        )
        return responses, time.perf_counter() - start

    async def both_passes():
        cold_result = await drive(cold)
        warm_result = await drive(warm)
        return cold_result, warm_result

    try:
        (cold_responses, cold_seconds), (warm_responses, warm_seconds) = (
            asyncio.run(both_passes())
        )
    finally:
        executor.shutdown()

    for response in cold_responses + warm_responses:
        if response["code"] != 200:
            raise SystemExit(f"service workload request failed: {response}")
    re_executed = [
        r
        for r in warm_responses
        if not (r.get("from_cache") or r.get("deduped"))
    ]
    if re_executed:
        raise SystemExit(
            f"{len(re_executed)} warm requests re-executed instead of "
            "being served from cache/dedup"
        )

    cold_rate = len(cold_responses) / max(cold_seconds, 1e-9)
    warm_rate = len(warm_responses) / max(warm_seconds, 1e-9)
    stats = service.stats
    return {
        "cold_jobs_per_sec": round(cold_rate, 2),
        "warm_jobs_per_sec": round(warm_rate, 2),
        "warm_speedup": round(warm_rate / max(cold_rate, 1e-9), 2),
        "executed": float(stats.executed),
        "cache_hits": float(stats.cache_hits),
        "dedup_hits": float(stats.dedup_hits),
        "cold_wall_seconds": round(cold_seconds, 6),
        "warm_wall_seconds": round(warm_seconds, 6),
    }


def build_service_record(metrics: dict) -> telemetry.BenchRecord:
    """One ``service-throughput`` trajectory entry from workload metrics."""
    return telemetry.BenchRecord(
        benchmark="service-throughput",
        metrics=metrics,
        workload={
            "formulas": _SERVICE_FORMULAS,
            "warm_copies": _SERVICE_WARM_COPIES,
            "random": (
                f"3-SAT, {_SERVICE_VARIABLES} vars, ratio {_SERVICE_RATIO}, "
                f"seeds 0..{_SERVICE_FORMULAS - 1}"
            ),
            "solver": "cdcl",
            "workers": 1,
        },
        meta={
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    )


def _measure_guard_cost(iterations: int = 200_000) -> float:
    """Per-call cost (seconds) of the disabled-telemetry guard.

    Subtracts an empty-loop baseline so only the ``active()`` /
    ``tracing_active()`` call itself is charged.
    """
    guard = _instrument.tracing_active
    start = time.perf_counter()
    for _ in range(iterations):
        guard()
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    baseline = time.perf_counter() - start
    return max(guarded - baseline, 0.0) / iterations


def _measure_proof_guard_cost(iterations: int = 200_000) -> float:
    """Per-call cost (seconds) of the disabled proof-emission guard.

    Every emission site in the CDCL kernel guards on
    ``self._proof is not None``; measure that attribute load plus the
    ``None`` test on a real (proof-less) solver instance, subtracting the
    same empty-loop baseline as :func:`_measure_guard_cost`.
    """
    solver = CDCLSolver()
    start = time.perf_counter()
    for _ in range(iterations):
        solver._proof is not None  # noqa: B015 - the guard under test
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    baseline = time.perf_counter() - start
    return max(guarded - baseline, 0.0) / iterations


def _count_guards_per_run() -> tuple[int, int]:
    """(guard evaluations, solver runs) of one fully-traced workload pass.

    Every CDCL search iteration evaluates exactly one ``tracing_active``
    guard before propagating, so the traced ``propagate`` span count is the
    loop-iteration count; restarts and the per-solve wrapper add a handful
    more. The count deliberately over-approximates (each span also implies
    its attribute bookkeeping) so the overhead projection stays pessimistic.
    """
    tracer = telemetry.start_tracing(capacity=4096)
    try:
        _run_workload()
        guards = 0
        runs = 0
        for root in tracer.finished:
            runs += 1
            for span in root.walk():
                guards += 1
                guards += span.truncated_children
    finally:
        telemetry.stop_tracing()
    return guards, max(runs, 1)


def _check(args) -> int:
    failures = []

    # 1. The workload itself must behave (verdicts + nonzero work).
    if args.trace:
        telemetry.start_tracing(sink=args.trace)
    if args.metrics:
        telemetry.enable_metrics()
    try:
        totals, results = _run_workload()
    finally:
        if args.trace:
            telemetry.stop_tracing()
        if args.metrics:
            telemetry.write_metrics(args.metrics)
            telemetry.disable_metrics()
    if totals["decisions"] == 0 or totals["propagations"] == 0:
        failures.append("workload produced no decisions/propagations")
    measured_pps = totals["propagations"] / max(totals["wall_seconds"], 1e-9)
    print(
        f"workload: {len(results)} instances, "
        f"{totals['decisions']} decisions, "
        f"{totals['propagations']} propagations in "
        f"{totals['wall_seconds']:.3f}s ({measured_pps:,.0f} props/sec)"
    )

    # 1b. Propagation-rate regression gate against the seed entry.
    bench_file = args.bench_file or str(DEFAULT_BENCH_FILE)
    seed_pps = _seed_propagation_rate(bench_file)
    if seed_pps > 0.0:
        floor = seed_pps * args.min_speedup
        print(
            f"propagation-rate gate: measured {measured_pps:,.0f} vs seed "
            f"{seed_pps:,.0f} x {args.min_speedup:g} = floor {floor:,.0f} "
            f"props/sec"
        )
        if measured_pps < floor:
            failures.append(
                f"propagations_per_sec {measured_pps:,.0f} regressed below "
                f"the seed-entry floor {floor:,.0f} "
                f"(seed {seed_pps:,.0f} x --min-speedup {args.min_speedup:g})"
            )
    else:
        print(
            f"propagation-rate gate: skipped (no seed cdcl-kernel entry "
            f"in {bench_file})"
        )

    # 2. Artifacts written above must read back.
    if args.trace:
        roots = telemetry.load_trace(args.trace)
        names = {span.name for root in roots for span in root.walk()}
        if "solve" not in names:
            failures.append(f"trace {args.trace} has no 'solve' span")
        print(f"trace: {len(roots)} roots, span names {sorted(names)}")
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            metrics_text = handle.read()
        if "repro_solver_runs_total" not in metrics_text:
            failures.append(f"metrics {args.metrics} lacks solver counters")
        print(f"metrics: {len(metrics_text.splitlines())} lines")

    # 3. Disabled-path overhead projection.
    guard_cost = _measure_guard_cost()
    guards, runs = _count_guards_per_run()
    per_run_guards = guards / runs
    per_run_seconds = max(totals["wall_seconds"] / len(results), 1e-9)
    overhead = (per_run_guards * guard_cost) / per_run_seconds
    print(
        f"disabled-path overhead: {guard_cost * 1e9:.1f}ns/guard x "
        f"{per_run_guards:.0f} guards/solve over {per_run_seconds * 1e3:.2f}"
        f"ms/solve = {overhead:.3%} (limit {args.max_overhead:.0%})"
    )
    if overhead > args.max_overhead:
        failures.append(
            f"projected disabled-telemetry overhead {overhead:.3%} exceeds "
            f"{args.max_overhead:.0%}"
        )

    # 4. Proof-emission disabled-path overhead projection. The guard
    # fires once per learned clause (one conflict learns one clause)
    # plus a constant handful per run (the empty-clause and timeout
    # sites), so the workload's own conflict totals bound the count.
    proof_guard_cost = _measure_proof_guard_cost()
    per_run_proof_guards = totals["conflicts"] / len(results) + 4
    proof_overhead = (per_run_proof_guards * proof_guard_cost) / per_run_seconds
    print(
        f"proof-emission disabled-path overhead: "
        f"{proof_guard_cost * 1e9:.1f}ns/guard x "
        f"{per_run_proof_guards:.0f} guards/solve over "
        f"{per_run_seconds * 1e3:.2f}ms/solve = {proof_overhead:.3%} "
        f"(limit {args.max_proof_overhead:.0%})"
    )
    if proof_overhead > args.max_proof_overhead:
        failures.append(
            f"projected disabled proof-emission overhead "
            f"{proof_overhead:.3%} exceeds {args.max_proof_overhead:.0%}"
        )

    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-file",
        default=None,
        help="trajectory file to append to (default: BENCH_cdcl.json at "
        "the repository root, or BENCH_service.json with --service)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the workload, artifacts and disabled-path overhead "
        "instead of appending an entry",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="append a service-throughput entry (an in-process SolveService "
        "driven cold then cache-warm) instead of the CDCL-kernel entry",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="--check fails when measured propagations_per_sec falls below "
        "the trajectory's seed entry times this factor (default: 1.0, i.e. "
        "no regression; 0 disables the gate)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.03,
        help="--check fails when the projected disabled-telemetry overhead "
        "exceeds this fraction (default: 0.03)",
    )
    parser.add_argument(
        "--max-proof-overhead",
        type=float,
        default=0.10,
        help="--check fails when the projected disabled proof-emission "
        "overhead exceeds this fraction (default: 0.10)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="with --check: also record a JSONL trace artifact to FILE",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="with --check: also write a metrics artifact to FILE",
    )
    args = parser.parse_args(argv)

    if args.check:
        return _check(args)

    if args.service:
        bench_file = args.bench_file or str(DEFAULT_SERVICE_BENCH_FILE)
        record = build_service_record(run_service_workload())
    else:
        bench_file = args.bench_file or str(DEFAULT_BENCH_FILE)
        totals, results = _run_workload()
        record = _build_record(totals, len(results))
    count = telemetry.append_bench_record(bench_file, record)
    print(record.to_text())
    print(f"appended entry {count} to {bench_file}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
