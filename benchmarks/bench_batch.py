"""Benchmark the runtime batch subsystem: throughput at 1 vs. 4 workers.

Run with::

    pytest benchmarks/bench_batch.py --benchmark-only -s

Each round ingests the same mixed SAT/UNSAT instance set through a cold
:class:`~repro.runtime.batch.BatchRunner`; the reported metric is
instances per second of wall-clock time.
"""

from __future__ import annotations

import os

import pytest

from repro import telemetry
from repro.cnf.generators import random_ksat
from repro.runtime import BatchRunner

#: Mixed difficulty: below, at and above the 3-SAT phase transition.
_RATIOS = (3.0, 4.26, 5.5)
_INSTANCES_PER_RATIO = 8
_NUM_VARIABLES = 14


def _instance_set():
    formulas = []
    seed = 0
    for ratio in _RATIOS:
        for _ in range(_INSTANCES_PER_RATIO):
            num_clauses = max(1, int(round(ratio * _NUM_VARIABLES)))
            formulas.append(random_ksat(_NUM_VARIABLES, num_clauses, seed=seed))
            seed += 1
    return formulas


def _run_batch(workers: int):
    runner = BatchRunner(solver="portfolio", workers=workers, master_seed=7)
    jobs = [
        runner.make_job(formula, label=f"bench-{index}")
        for index, formula in enumerate(_instance_set())
    ]
    return runner.run_jobs(jobs)


def _record(report, workers: int) -> telemetry.BenchRecord:
    """The run as a trajectory entry (``REPRO_BENCH_FILE`` appends it)."""
    return telemetry.BenchRecord(
        benchmark="batch-throughput",
        metrics={
            "throughput_per_sec": round(report.throughput, 2),
            "wall_seconds": round(report.wall_seconds, 6),
            "cache_hits": float(report.cache_hits),
        },
        workload={
            "workers": workers,
            "instances": report.total,
            "ratios": list(_RATIOS),
            "num_variables": _NUM_VARIABLES,
        },
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_batch_throughput(run_once, benchmark, workers):
    report = run_once(_run_batch, workers)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["instances"] = report.total
    benchmark.extra_info["throughput_per_sec"] = round(report.throughput, 2)
    record = _record(report, workers)
    bench_file = os.environ.get("REPRO_BENCH_FILE")
    if bench_file:
        telemetry.append_bench_record(bench_file, record)
    print()
    print(report.to_text())
    print(record.to_text())
    assert report.total == len(_RATIOS) * _INSTANCES_PER_RATIO
    assert not report.status_counts.get("ERROR")
