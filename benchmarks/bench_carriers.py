"""Benchmark regenerating Table C1 — carrier-family / realization ablation.

Run with::

    pytest benchmarks/bench_carriers.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.carrier_ablation import run_carrier_ablation

MAX_SAMPLES = 150_000


def test_carrier_ablation_table(run_once, benchmark):
    record = run_once(run_carrier_ablation, max_samples=MAX_SAMPLES, seed=0)
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    by_name = {row[0]: row for row in record.rows}
    # The exact reference and the unit-power realizations must both be correct.
    assert by_name["symbolic (exact reference)"][-1] is True
    assert by_name["sampled / bipolar (+-1)"][-1] is True
    assert by_name["rtw engine"][-1] is True
