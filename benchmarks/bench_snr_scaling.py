"""Benchmark regenerating Table S1 — the Section III-F SNR scaling study.

Run with::

    pytest benchmarks/bench_snr_scaling.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.snr_scaling import run_snr_scaling

SIZES = ((2, 2), (2, 4), (3, 4), (3, 6))
SAMPLES_PER_CHECK = 80_000
REPETITIONS = 5


def test_snr_scaling_table(run_once, benchmark):
    record = run_once(
        run_snr_scaling,
        sizes=SIZES,
        num_samples=SAMPLES_PER_CHECK,
        repetitions=REPETITIONS,
        seed=0,
    )
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    # Shape assertions: the analytic SNR collapses exponentially with n·m and
    # the required sample budget grows monotonically.
    paper_snrs = [row[3] for row in record.rows]
    budgets = [row[6] for row in record.rows]
    assert all(a > b for a, b in zip(paper_snrs, paper_snrs[1:]))
    assert all(a < b for a, b in zip(budgets, budgets[1:]))
