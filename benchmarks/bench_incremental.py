"""Benchmark incremental sessions: k-sweep throughput vs from-scratch solving.

Run with::

    pytest benchmarks/bench_incremental.py --benchmark-only -s

The workload is the register-allocation k-sweep of the examples at a more
serious size: the interference graph is the doubly-Mycielskified 5-cycle
(23 values, chromatic number 5 — every sweep sees several genuinely hard
UNSAT queries before the first feasible k). Both contestants answer the
identical query sequence:

* **session** — one :class:`~repro.incremental.CDCLSession` over the
  K-register encoding, one ``solve(assumptions=...)`` per k; learned
  clauses, VSIDS activity and saved phases carry across queries.
* **fresh** — a cold :class:`~repro.solvers.cdcl.CDCLSolver` per k solving
  the same encoding with the assumptions appended as unit clauses.

The headline metric (and the acceptance criterion of the incremental
subsystem) is total CDCL decisions across the sweep: the warm session must
complete it with strictly fewer decisions than the fresh-solve loop.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import telemetry
from repro.cnf.structured import graph_coloring_formula
from repro.incremental import make_session
from repro.solvers.cdcl import CDCLSolver


def _mycielski(edges, num_vertices):
    """Mycielski construction: +1 to the chromatic number, triangle-free."""
    grown = list(edges)
    for u, v in edges:
        grown += [(u, num_vertices + v), (v, num_vertices + u)]
    grown += [(num_vertices + i, 2 * num_vertices) for i in range(num_vertices)]
    return grown, 2 * num_vertices + 1


def _interference_graph():
    """C5 Mycielskified twice: 23 values, chromatic number 5."""
    edges, n = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 5
    edges, n = _mycielski(edges, n)
    return _mycielski(edges, n)


EDGES, NUM_VALUES = _interference_graph()
MAX_REGISTERS = 6
SWEEP = tuple(range(2, MAX_REGISTERS + 1))


def _blocked_registers(k: int) -> list[int]:
    """Assumptions restricting the K-register encoding to k registers."""
    return [
        -(value * MAX_REGISTERS + color + 1)
        for value in range(NUM_VALUES)
        for color in range(k, MAX_REGISTERS)
    ]


def _run_sweeps():
    formula = graph_coloring_formula(EDGES, NUM_VALUES, MAX_REGISTERS)

    session = make_session("cdcl", base_formula=formula)
    session_started = time.perf_counter()
    session_results = [
        session.solve(assumptions=_blocked_registers(k)) for k in SWEEP
    ]
    session_seconds = time.perf_counter() - session_started

    fresh_started = time.perf_counter()
    fresh_results = [
        CDCLSolver().solve(formula.with_assumptions(_blocked_registers(k)))
        for k in SWEEP
    ]
    fresh_seconds = time.perf_counter() - fresh_started

    return {
        "session_results": session_results,
        "fresh_results": fresh_results,
        "session_decisions": sum(r.stats.decisions for r in session_results),
        "fresh_decisions": sum(r.stats.decisions for r in fresh_results),
        "session_conflicts": sum(r.stats.conflicts for r in session_results),
        "fresh_conflicts": sum(r.stats.conflicts for r in fresh_results),
        "session_seconds": session_seconds,
        "fresh_seconds": fresh_seconds,
    }


def _record(sweep, queries_per_second: float) -> telemetry.BenchRecord:
    """The sweep as a trajectory entry (``REPRO_BENCH_FILE`` appends it)."""
    return telemetry.BenchRecord(
        benchmark="incremental-k-sweep",
        metrics={
            "session_queries_per_sec": round(queries_per_second, 2),
            "session_decisions": float(sweep["session_decisions"]),
            "fresh_decisions": float(sweep["fresh_decisions"]),
            "session_seconds": round(sweep["session_seconds"], 6),
            "fresh_seconds": round(sweep["fresh_seconds"], 6),
        },
        workload={
            "values": NUM_VALUES,
            "max_registers": MAX_REGISTERS,
            "sweep": list(SWEEP),
        },
    )


def test_incremental_k_sweep(run_once, benchmark):
    sweep = run_once(_run_sweeps)
    queries_per_second = len(SWEEP) / max(sweep["session_seconds"], 1e-9)
    benchmark.extra_info["values"] = NUM_VALUES
    benchmark.extra_info["sweep"] = list(SWEEP)
    benchmark.extra_info["session_decisions"] = sweep["session_decisions"]
    benchmark.extra_info["fresh_decisions"] = sweep["fresh_decisions"]
    benchmark.extra_info["session_queries_per_sec"] = round(queries_per_second, 2)
    record = _record(sweep, queries_per_second)
    bench_file = os.environ.get("REPRO_BENCH_FILE")
    if bench_file:
        telemetry.append_bench_record(bench_file, record)
    print(record.to_text())
    print()
    print(
        f"k-sweep over {NUM_VALUES} values, k={SWEEP[0]}..{SWEEP[-1]}: "
        f"session {sweep['session_decisions']} decisions / "
        f"{sweep['session_seconds']:.3f}s vs fresh "
        f"{sweep['fresh_decisions']} decisions / {sweep['fresh_seconds']:.3f}s"
    )

    # Both contestants must agree on every verdict of the sweep ...
    session_verdicts = [r.status for r in sweep["session_results"]]
    fresh_verdicts = [r.status for r in sweep["fresh_results"]]
    assert session_verdicts == fresh_verdicts
    # ... the sweep must actually cross the feasibility frontier ...
    assert "UNSAT" in session_verdicts and "SAT" in session_verdicts
    # ... and the warm session must finish it with strictly fewer CDCL
    # decisions than the from-scratch loop (the acceptance criterion).
    assert sweep["session_decisions"] < sweep["fresh_decisions"]
