"""Benchmark regenerating Table H1 — the Section V hybrid CPU + NBL engine.

Also reports the 'variable' guidance mode (the paper's literal sketch) next
to the default 'value' mode as an ablation.

Run with::

    pytest benchmarks/bench_hybrid.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.hybrid_comparison import run_hybrid_comparison


def test_hybrid_value_mode_table(run_once, benchmark):
    record = run_once(run_hybrid_comparison, seed=0, guidance_mode="value")
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    for row in record.rows:
        assert row[-1] is True  # verdicts must agree


def test_hybrid_variable_mode_table(run_once, benchmark):
    record = run_once(run_hybrid_comparison, seed=0, guidance_mode="variable")
    benchmark.extra_info["table"] = record.to_text()
    print()
    print(record.to_text())
    for row in record.rows:
        assert row[-1] is True
