"""Benchmark the inprocessing pipeline: reduction ratios and CDCL speedup.

Run with::

    pytest benchmarks/bench_preprocess.py --benchmark-only -s

Two questions, one per benchmark:

* **Reduction** — how much of each structured family does the pipeline
  (units, pure literals, subsumption/strengthening, blocked clauses,
  bounded variable elimination) remove? Cycle colorings and all-equal
  chains collapse entirely (decided without search); Mycielski coloring
  encodings lose over a third of their clauses while keeping a residual
  core; pigeonhole instances barely budge (their hardness is not
  syntactic redundancy). The acceptance criterion is a ≥30% clause
  reduction on at least one family.
* **Decisions** — over a mixed workload, does ``preprocess=True`` make
  CDCL search less? Both routes must agree on every verdict and the
  preprocessed route must finish the workload with strictly fewer total
  decisions (instances the pipeline decides outright contribute zero).

Everything here is deterministic — fixed seeds, deterministic CDCL — so
the asserted inequalities are stable, not flaky thresholds.
"""

from __future__ import annotations

import time

import pytest

from repro.cnf.generators import random_ksat
from repro.cnf.structured import (
    all_equal_formula,
    cycle_graph_edges,
    graph_coloring_formula,
    pigeonhole_formula,
)
from repro.preprocess import Preprocessor
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.registry import make_solver


def _mycielski(edges, num_vertices):
    """Mycielski construction: +1 to the chromatic number, triangle-free."""
    grown = list(edges)
    for u, v in edges:
        grown += [(u, num_vertices + v), (v, num_vertices + u)]
    grown += [(num_vertices + i, 2 * num_vertices) for i in range(num_vertices)]
    return grown, 2 * num_vertices + 1


def _mycielski_family():
    """Coloring encodings of C5 Mycielskified once (χ=4) and twice (χ=5)."""
    edges, n = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 5
    edges, n = _mycielski(edges, n)
    grotzsch = [
        graph_coloring_formula(edges, n, 3),  # UNSAT
        graph_coloring_formula(edges, n, 4),  # SAT
    ]
    edges2, n2 = _mycielski(edges, n)
    return grotzsch + [
        graph_coloring_formula(edges2, n2, 4),  # UNSAT, the hard one
        graph_coloring_formula(edges2, n2, 5),  # SAT
    ]


#: label -> list of formulas; every family is deterministic.
FAMILIES = {
    "coloring-cycle": [
        graph_coloring_formula(cycle_graph_edges(n), n, 3) for n in (9, 15, 21)
    ],
    "coloring-mycielski": _mycielski_family(),
    "all-equal": [all_equal_formula(n) for n in (20, 30)],
    "pigeonhole": [pigeonhole_formula(n + 1, n) for n in (5, 6, 7)],
    "random-3sat": [random_ksat(60, 180, 3, seed=s) for s in (42, 43, 44)],
}


def _reduction_table():
    table = {}
    for family, formulas in FAMILIES.items():
        preprocessor = Preprocessor()
        clauses = sum(f.num_clauses for f in formulas)
        variables = sum(f.num_variables for f in formulas)
        reductions = [preprocessor.preprocess(f) for f in formulas]
        table[family] = {
            "instances": len(formulas),
            "clauses": clauses,
            "reduced_clauses": sum(r.formula.num_clauses for r in reductions),
            "variables": variables,
            "reduced_variables": sum(r.formula.num_variables for r in reductions),
            "decided": sum(r.decided for r in reductions),
            "clause_reduction": 1.0
            - sum(r.formula.num_clauses for r in reductions) / clauses,
        }
    return table


def test_preprocess_reduction(run_once, benchmark):
    table = run_once(_reduction_table)
    benchmark.extra_info["families"] = table
    print()
    for family, row in table.items():
        print(
            f"{family:20s} clauses {row['clauses']:5d} -> "
            f"{row['reduced_clauses']:5d} ({row['clause_reduction']:5.0%})  "
            f"variables {row['variables']:4d} -> {row['reduced_variables']:4d}  "
            f"decided outright {row['decided']}/{row['instances']}"
        )
    # Acceptance criterion: ≥30% clause reduction on a structured family.
    best = max(row["clause_reduction"] for row in table.values())
    assert best >= 0.30, f"best family clause reduction only {best:.0%}"
    assert table["coloring-mycielski"]["clause_reduction"] >= 0.30
    # The reduction is not an artifact of instances that simply vanish:
    # the Mycielski encodings all keep a residual core to search.
    assert table["coloring-mycielski"]["decided"] == 0


def _decision_workload():
    # One list, mixed verdicts: collapsing families contribute zero
    # decisions on the preprocessed route, the Mycielski/pigeonhole cores
    # shrink, and the sparse random instances lose their easy margins.
    workload = (
        FAMILIES["coloring-cycle"]
        + FAMILIES["coloring-mycielski"]
        + FAMILIES["all-equal"]
        + FAMILIES["pigeonhole"]
        + FAMILIES["random-3sat"]
    )
    direct_solver = CDCLSolver()
    hooked_solver = make_solver("cdcl", preprocess=True)

    direct_started = time.perf_counter()
    direct = [direct_solver.solve(f) for f in workload]
    direct_seconds = time.perf_counter() - direct_started

    hooked_started = time.perf_counter()
    hooked = [hooked_solver.solve(f) for f in workload]
    hooked_seconds = time.perf_counter() - hooked_started

    return {
        "workload": len(workload),
        "direct": direct,
        "hooked": hooked,
        "direct_decisions": sum(r.stats.decisions for r in direct),
        "hooked_decisions": sum(r.stats.decisions for r in hooked),
        "direct_seconds": direct_seconds,
        "hooked_seconds": hooked_seconds,
    }


def test_preprocess_decision_speedup(run_once, benchmark):
    run = run_once(_decision_workload)
    benchmark.extra_info["direct_decisions"] = run["direct_decisions"]
    benchmark.extra_info["preprocessed_decisions"] = run["hooked_decisions"]
    print()
    print(
        f"{run['workload']} instances: direct {run['direct_decisions']} "
        f"decisions / {run['direct_seconds']:.3f}s vs preprocessed "
        f"{run['hooked_decisions']} decisions / {run['hooked_seconds']:.3f}s"
    )
    # Both routes agree on every verdict ...
    assert [r.status for r in run["direct"]] == [r.status for r in run["hooked"]]
    assert {r.status for r in run["direct"]} == {"SAT", "UNSAT"}
    # ... and preprocessing strictly reduces total CDCL decisions (the
    # acceptance criterion).
    assert run["hooked_decisions"] < run["direct_decisions"]
