"""Benchmark the solve service: jobs/sec cold vs. cache/dedup-warm.

Run with::

    pytest benchmarks/bench_service.py --benchmark-only -s

One round drives an in-process :class:`~repro.service.SolveService` —
the same handler behind the TCP and stdio transports — through the
fixed two-pass workload of ``record_trajectory.py --service``: a cold
pass of distinct instances (every request executes a fresh solve)
followed by a warm pass resubmitting each instance three times (every
request absorbed by the sharded result cache / in-flight dedup). The
reported metrics are jobs per second of wall-clock time for each pass.
"""

from __future__ import annotations

import os

from repro import telemetry

from record_trajectory import (
    _SERVICE_FORMULAS,
    _SERVICE_WARM_COPIES,
    build_service_record,
    run_service_workload,
)


def test_service_throughput(run_once, benchmark):
    metrics = run_once(run_service_workload)
    benchmark.extra_info.update(metrics)
    record = build_service_record(metrics)
    bench_file = os.environ.get("REPRO_BENCH_FILE")
    if bench_file:
        telemetry.append_bench_record(bench_file, record)
    print()
    print(record.to_text())
    assert metrics["executed"] == float(_SERVICE_FORMULAS)
    assert metrics["cache_hits"] + metrics["dedup_hits"] == float(
        _SERVICE_FORMULAS * _SERVICE_WARM_COPIES
    )
    assert metrics["warm_jobs_per_sec"] > metrics["cold_jobs_per_sec"]
